//! Bounded-variable primal simplex, generic over the basis factorisation,
//! built around a *hypersparse* hot loop.
//!
//! Design notes (what a reader needs to audit the implementation):
//!
//! * **Computational form.** The model's `m` range rows `lb ≤ aᵀx ≤ ub` are
//!   rewritten as equalities `aᵀx − s = 0` with one *logical* (slack)
//!   variable `s ∈ [lb, ub]` per row, so the working system is
//!   `A_ext · (x, s) = 0` with box bounds on every column. The right-hand
//!   side being identically zero makes the initial all-logical basis
//!   (`B = −I`) trivially factorised.
//! * **Phase 1 without artificials.** If the initial basis is primal
//!   infeasible we minimise the sum of bound violations of basic variables
//!   using the standard piecewise-linear phase-1 costs (−1 below the lower
//!   bound, +1 above the upper bound). Infeasible basic variables block the
//!   ratio test at the bound they are approaching, which monotonically
//!   shrinks total infeasibility.
//! * **Pricing.** The reduced-cost vector `d` is maintained
//!   *incrementally*: after each basis exchange it is updated from the
//!   pivot row (`d ← d − θ_d·α_r`, with `α_r` scattered from a sparse
//!   BTRAN of the pivot row), and in phase 1 the cost flips of basic
//!   variables crossing their bounds are folded in through one batched
//!   sparse BTRAN per iteration. Selection is candidate-list partial
//!   pricing driven by Devex reference weights (score `d²/w`): a full
//!   scan refills the list periodically (and proves optimality), cheap
//!   candidate scans serve the iterations in between. Ties (within a
//!   relative epsilon) break toward the lowest column index, so the pivot
//!   sequence — and therefore the final basis — is reproducible across
//!   the dense and sparse factorisation paths despite their different
//!   rounding. A Bland fallback (least-index, after a run of degenerate
//!   pivots) guarantees termination; the periodic resynchronisation
//!   recomputes `d` from scratch so incremental drift stays at rounding
//!   level (observable via [`SolveStats::max_resync_drift`]).
//! * **Ratio test.** Two-pass Harris over the *nonzeros* of the FTRAN
//!   result: pass 1 computes the largest step every basic variable
//!   tolerates with its bound expanded by the feasibility tolerance;
//!   pass 2 picks the largest-magnitude pivot among rows blocking within
//!   that step, breaking near-ties toward the lowest basis position.
//! * **Factorisation.** The basis is held behind the internal
//!   `BasisFactor` trait: `DenseInv` (dense inverse + dense eta updates,
//!   the original path, kept for cross-validation) or `SparseLu` (Markowitz-ordered
//!   sparse LU + product-form eta file, the at-scale path). Refactoring
//!   is periodic *and* triggered early when the eta file outgrows the
//!   fresh factorisation. All hot-path linear algebra runs through
//!   caller-owned [`IndexedVec`] workspaces: the FTRAN / BTRAN / pricing
//!   path performs **no heap allocation**.
//! * **Warm starts.** A solved model exposes its final [`Basis`];
//!   [`solve_dense`]/[`solve_sparse`] accept one and start from it instead
//!   of the all-logical basis. After a bound tightening (Algorithm 2's
//!   `l ≥ L` step) the previous basis is typically a handful of pivots —
//!   often zero — from the new optimum.
//! * **Canonical extraction.** Whatever path produced the final basis, the
//!   reported [`Solution`] is recomputed from scratch off a canonical
//!   sparse LU of the basis columns in ascending column order. Solutions
//!   are therefore a pure function of `(model, final basis)`: a cold dense
//!   solve, a cold sparse solve and a warm re-solve that land on the same
//!   basis report bit-identical numbers — the property the engine's
//!   cross-backend byte-identity contract rests on.

// Dense linear-algebra kernels index several same-length buffers per loop;
// iterator zips would obscure the math without changing codegen.
#![allow(clippy::needless_range_loop)]

use crate::error::{Distress, SolveError};
use crate::factor::{BasisFactor, ColsView, DenseInv, SparseLu};
use crate::model::{LpModel, Objective};
use crate::solution::{Basis, Solution, SolveStats, VarStatus};
use llamp_util::IndexedVec;

const INF: f64 = f64::INFINITY;

/// Relative epsilon under which two pricing scores count as tied (ties
/// break toward the lowest column index). Wide enough to swallow the
/// rounding gap between the dense-inverse and sparse-LU factorisations —
/// mathematically tied candidates must resolve identically in both, or
/// their pivot paths (and degenerate final bases) drift apart.
const PRICE_TIE_REL: f64 = 1e-6;
/// Relative epsilon under which two ratio-test pivot magnitudes count as
/// tied (ties break toward the lowest basis position).
const RATIO_TIE_REL: f64 = 1e-6;
/// Candidate-list refill cadence: a full pricing scan at least every this
/// many iterations, so stale lists cannot starve a strongly improving
/// column for long. Keyed to the iteration counter (identical across
/// factorisation backends) to keep pivot sequences reproducible.
const PARTIAL_REFILL_EVERY: u64 = 16;
/// Devex reference-framework reset threshold: when the leaving variable's
/// new weight estimate exceeds this, the weights have degraded and the
/// framework restarts from 1.
const DEVEX_RESET: f64 = 1e8;
/// Minimum pivots between eta-growth-triggered refactorisations, so a
/// dense burst cannot thrash the factoriser.
const MIN_PIVOTS_BEFORE_ETA_REFACTOR: u64 = 16;

/// Tunable solver parameters. The defaults suit the well-scaled (±1
/// coefficient) models LLAMP generates.
#[derive(Debug, Clone)]
pub struct SimplexOptions {
    /// Primal feasibility tolerance (absolute, on variable bounds).
    pub feas_tol: f64,
    /// Dual feasibility / optimality tolerance (on reduced costs).
    pub opt_tol: f64,
    /// Minimum magnitude accepted for a pivot element.
    pub pivot_tol: f64,
    /// Hard iteration cap; `0` selects `20_000 + 50·(m+n)`.
    pub max_iterations: u64,
    /// Refactorise the basis every this many pivots (an eta file that
    /// outgrows the fresh factorisation triggers earlier).
    pub refactor_every: u64,
    /// Switch to Bland's rule after this many consecutive degenerate pivots.
    pub bland_after: u32,
    /// Wall-clock budget in milliseconds; `0` disables. Checked every 64
    /// iterations, so overshoot is bounded by 64 iteration times. A
    /// tripped budget returns [`SolveError::TimeLimit`] — recoverable, so
    /// the fallback ladder may still answer (off by default: wall-clock
    /// aborts are inherently machine-dependent).
    pub time_limit_ms: u64,
    /// Stall budget: abort with [`SolveError::Stalled`] after this many
    /// *consecutive* degenerate (zero-step) iterations; `0` disables.
    /// Generously above `bland_after`, this only fires when even Bland's
    /// anti-cycling rule is grinding without progress.
    pub stall_iters: u64,
    /// Numerical-distress tripwire on incremental-pricing drift: when a
    /// from-scratch reduced-cost resync disagrees with the incremental
    /// values by more than this relative gap, the solve aborts with
    /// [`SolveError::Distress`] rather than risk certifying a wrong
    /// optimum. `0.0` disables. The default `1e-6` sits ~8 orders of
    /// magnitude above the drift measured on LLAMP's models (~1e-14).
    pub drift_limit: f64,
    /// Distress tripwire on repeated Bland engagements: abort when one
    /// solve has to *enter* Bland mode more than this many separate
    /// times; `0` disables (the default — degenerate-but-finite models
    /// legitimately re-engage Bland).
    pub bland_streak_limit: u32,
    /// Distress tripwire on singular refactorisations: abort after this
    /// many refactorisations come back singular within one solve; `0`
    /// disables (the default — a singular refactorisation falls back to
    /// the eta-updated factor, which is usually fine once).
    pub singular_limit: u32,
    /// Anti-degeneracy cost perturbation (à la HiGHS cost shifting),
    /// applied at phase-2 entry and removed *exactly* before the final
    /// optimality confirmation: each column's internal cost is shifted
    /// away from zero by `perturb · (1 + |c_j|) · ξ_j` with a
    /// deterministic per-column `ξ_j ∈ [0.5, 1.5)`, the perturbed problem
    /// is solved, the true costs are restored and a clean-up phase 2
    /// re-certifies optimality under them. The reported solution is
    /// therefore exact. `0.0` (the default) disables — the longest-path
    /// crash already starts dual feasible, so perturbation is a recovery
    /// lever for tie-heavy cold starts, not a hot-path default.
    pub perturb: f64,
    /// Reuse a previous solve's LU factorisation when the incoming warm
    /// basis and constraint matrix are bit-identical to the one it was
    /// built for, and hand the final factorisation to the extracted
    /// solution instead of refactorising (on by default). This only
    /// skips redundant factorisations of identical matrices, so the
    /// solution bytes are unchanged; the switch exists so tests can
    /// certify that claim by diffing both paths.
    pub lu_reuse: bool,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        Self {
            feas_tol: 1e-7,
            opt_tol: 1e-7,
            pivot_tol: 1e-9,
            max_iterations: 0,
            refactor_every: 256,
            bland_after: 64,
            time_limit_ms: 0,
            stall_iters: 0,
            drift_limit: 1e-6,
            bland_streak_limit: 0,
            singular_limit: 0,
            perturb: 0.0,
            lu_reuse: true,
        }
    }
}

/// Retained basis data enabling post-solve ranging queries. Holds the
/// canonical sparse LU built at extraction, so ranging is identical no
/// matter which factorisation ran the pivots.
#[derive(Debug, Clone)]
pub struct RangingData {
    lu: SparseLu,
    /// Column sparse structure of the extended matrix (structural+logical).
    col_start: Vec<usize>,
    col_rows: Vec<u32>,
    col_vals: Vec<f64>,
    /// Basic column per row position (ascending column order).
    basis: Vec<usize>,
    /// Values of all extended columns at the optimum.
    x: Vec<f64>,
    lb: Vec<f64>,
    ub: Vec<f64>,
    pivot_tol: f64,
    /// Whether `lu` came from the standard-threshold factorisation (or a
    /// solver takeover of one). The min-pivot salvage path produces an LU
    /// that `refactor` would reject, which must never seed a later solve.
    strict: bool,
}

impl RangingData {
    /// Range of the lower bound of extended column `j` keeping the basis
    /// optimal (primal feasible; dual feasibility is unaffected by bound
    /// shifts).
    pub(crate) fn lb_range(&self, j: usize, status: VarStatus) -> (f64, f64) {
        match status {
            VarStatus::Basic | VarStatus::FreeZero => (f64::NEG_INFINITY, self.x[j]),
            VarStatus::AtUpper => (f64::NEG_INFINITY, self.ub[j]),
            VarStatus::AtLower => {
                let (dn, up) = self.lb_step_range(&[(j, 1.0, VarStatus::AtLower)]);
                (self.x[j] + dn, self.x[j] + up)
            }
        }
    }

    /// Feasible step window `[t_lo, t_hi]` (containing 0) for a joint
    /// lower-bound move along an **arbitrary direction**: every listed
    /// extended column `j` shifts its lower bound by `t·dir_j`
    /// simultaneously. This is the ranging primitive behind parametric
    /// re-solves that move *several* bounds at once (multi-parameter
    /// sweeps stepping `L`, `G` and `o` together) — the classic
    /// one-bound `SALBLow`/`SALBUp` query is the `dir = e_j` special
    /// case.
    ///
    /// Dual feasibility is unaffected by bound moves, so the window is
    /// where primal feasibility survives: nonbasic-at-lower columns ride
    /// their bound (`x_j += t·dir_j`, basic variables move by
    /// `−t·B⁻¹(Σ dir_j a_j)`), while basic / at-upper / free columns
    /// merely require the moved bound to stay on the correct side of
    /// their (unmoved) value.
    pub(crate) fn lb_step_range(&self, moves: &[(usize, f64, VarStatus)]) -> (f64, f64) {
        let mut dn = f64::NEG_INFINITY;
        let mut up = INF;
        // Aggregate basic-variable response w = Σ_j dir_j · B⁻¹ a_j over
        // the columns that actually ride their lower bound.
        let mut w: Option<Vec<f64>> = None;
        for &(j, dir, status) in moves {
            if dir == 0.0 {
                continue;
            }
            match status {
                VarStatus::Basic | VarStatus::FreeZero => {
                    // x_j stays put; the moved bound must not cross it:
                    // lb_j + t·dir ≤ x_j.
                    let slack = self.x[j] - self.lb[j];
                    if dir > 0.0 {
                        up = up.min(slack / dir);
                    } else {
                        dn = dn.max(slack / dir);
                    }
                }
                VarStatus::AtUpper => {
                    let slack = self.ub[j] - self.lb[j];
                    if dir > 0.0 {
                        up = up.min(slack / dir);
                    } else {
                        dn = dn.max(slack / dir);
                    }
                }
                VarStatus::AtLower => {
                    let col = self.ftran(j);
                    match &mut w {
                        None => {
                            let mut v = col;
                            if dir != 1.0 {
                                for x in v.iter_mut() {
                                    *x *= dir;
                                }
                            }
                            w = Some(v);
                        }
                        Some(acc) => {
                            for (a, c) in acc.iter_mut().zip(&col) {
                                *a += dir * c;
                            }
                        }
                    }
                    // The moved variable's own upper bound.
                    if self.ub[j].is_finite() {
                        let slack = self.ub[j] - self.x[j];
                        if dir > 0.0 {
                            up = up.min(slack / dir);
                        } else {
                            dn = dn.max(slack / dir);
                        }
                    }
                }
            }
        }
        if let Some(w) = w {
            for (i, &wi) in w.iter().enumerate() {
                if wi.abs() <= self.pivot_tol {
                    continue;
                }
                let b = self.basis[i];
                let xb = self.x[b];
                let (lbi, ubi) = (self.lb[b], self.ub[b]);
                if wi > 0.0 {
                    // x_b decreases as t grows.
                    if lbi.is_finite() {
                        up = up.min((xb - lbi) / wi);
                    }
                    if ubi.is_finite() {
                        dn = dn.max((xb - ubi) / wi);
                    }
                } else {
                    // x_b increases as t grows.
                    if ubi.is_finite() {
                        up = up.min((xb - ubi) / wi);
                    }
                    if lbi.is_finite() {
                        dn = dn.max((xb - lbi) / wi);
                    }
                }
            }
        }
        (dn, up)
    }

    fn ftran(&self, j: usize) -> Vec<f64> {
        let view = ColsView {
            start: &self.col_start,
            rows: &self.col_rows,
            vals: &self.col_vals,
        };
        self.lu.ftran_col_alloc(view, j)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum NbStatus {
    Basic,
    Lower,
    Upper,
    FreeZero,
}

impl NbStatus {
    fn to_var_status(self) -> VarStatus {
        match self {
            NbStatus::Basic => VarStatus::Basic,
            NbStatus::Lower => VarStatus::AtLower,
            NbStatus::Upper => VarStatus::AtUpper,
            NbStatus::FreeZero => VarStatus::FreeZero,
        }
    }
}

pub(crate) struct Core<F: BasisFactor> {
    pub(crate) m: usize,
    pub(crate) n_struct: usize,
    pub(crate) n_total: usize,
    pub(crate) col_start: Vec<usize>,
    pub(crate) col_rows: Vec<u32>,
    pub(crate) col_vals: Vec<f64>,
    /// Row-wise mirror of the structural columns (CSR), for scattering
    /// pivot rows: `α_j = Σ_i ρ_i A_ij` costs only the nonzeros of the
    /// rows in `supp(ρ)`. Logical columns are implicit (−1 on the
    /// diagonal).
    row_start: Vec<usize>,
    row_cols: Vec<u32>,
    row_vals: Vec<f64>,
    pub(crate) lb: Vec<f64>,
    pub(crate) ub: Vec<f64>,
    /// Internal costs (always a minimisation).
    pub(crate) cost: Vec<f64>,
    pub(crate) basis: Vec<usize>,
    pub(crate) in_basis: Vec<i32>,
    pub(crate) status: Vec<NbStatus>,
    pub(crate) x: Vec<f64>,
    pub(crate) factor: F,
    pub(crate) iterations: u64,
    pub(crate) pivots_since_refactor: u64,
    /// Whether the requested warm basis was actually installed (a
    /// dimension mismatch or singular basis silently falls back to the
    /// cold start).
    pub(crate) warm_installed: bool,
    /// Whether `factor` is a pristine factorisation of the current basis
    /// (no eta updates absorbed since the last refactorisation/adoption).
    /// Only such factors may be handed to the extracted solution in place
    /// of the canonical re-factorisation.
    pub(crate) factor_fresh: bool,
    // --- incremental pricing state ---
    /// Reduced costs of all columns under the current phase's objective,
    /// maintained incrementally and resynchronised at refactorisations.
    pub(crate) d: Vec<f64>,
    /// Devex reference weights.
    devex: Vec<f64>,
    /// Candidate list (ascending column order).
    cand: Vec<u32>,
    /// Phase-1 cost of each basic position (−1/0/+1).
    cb1: Vec<f64>,
    /// Number of (scaled-tolerance) infeasible basic positions.
    infeas_count: usize,
    /// Whether the current Bland streak has already forced a resync.
    bland_active: bool,
    /// How many separate times this solve has *entered* Bland mode
    /// (feeds the `bland_streak_limit` distress tripwire).
    bland_engagements: u32,
    /// Singular refactorisations within this solve (feeds the
    /// `singular_limit` distress tripwire).
    singular_refactors: u32,
    /// Distress detected off the main loop (drift recorded inside a
    /// resync); the iteration loop aborts on it at the next check.
    distressed: Option<Distress>,
    /// Wall-clock cutoff from `SimplexOptions::time_limit_ms`.
    pub(crate) deadline: Option<std::time::Instant>,
    // --- solver-owned workspaces (no per-iteration allocation) ---
    pub(crate) w: IndexedVec,
    pub(crate) rho: IndexedVec,
    pub(crate) alpha: IndexedVec,
    pub(crate) delta: IndexedVec,
    cb_buf: Vec<f64>,
    y_buf: Vec<f64>,
    pub(crate) stats: SolveStats,
    pub(crate) opts: SimplexOptions,
}

/// Solve `model` with the default (sparse LU) factorisation, returning the
/// optimal [`Solution`] or the terminal [`SolveError`] explaining why
/// none exists.
pub fn solve(model: &LpModel, opts: &SimplexOptions) -> Result<Solution, SolveError> {
    solve_sparse(model, opts, None)
}

/// Solve with the dense basis inverse (the cross-validation reference
/// path). `warm` optionally seeds the starting basis.
pub fn solve_dense(
    model: &LpModel,
    opts: &SimplexOptions,
    warm: Option<&Basis>,
) -> Result<Solution, SolveError> {
    traced_solve("dense", model, warm, || {
        solve_generic::<DenseInv>(model, opts, warm, None)
    })
}

/// Solve with the sparse LU / eta-file factorisation (the at-scale path).
/// `warm` optionally seeds the starting basis.
pub fn solve_sparse(
    model: &LpModel,
    opts: &SimplexOptions,
    warm: Option<&Basis>,
) -> Result<Solution, SolveError> {
    solve_sparse_reusing(model, opts, warm, None)
}

/// [`solve_sparse`] with an optional previous solution's [`RangingData`]:
/// when the warm basis and constraint matrix are bit-identical to the
/// ones the retained LU was built for, installation adopts that LU
/// instead of refactorising. Purely a factorisation shortcut — the
/// numbers are unchanged (the adopted LU is the very factorisation a
/// fresh refactor of the same bits would produce).
pub fn solve_sparse_reusing(
    model: &LpModel,
    opts: &SimplexOptions,
    warm: Option<&Basis>,
    reuse: Option<&RangingData>,
) -> Result<Solution, SolveError> {
    traced_solve("sparse", model, warm, || {
        solve_generic::<SparseLu>(model, opts, warm, reuse)
    })
}

/// Wrap one solve in an `lp.solve` obs span, folding the per-solve
/// [`SolveStats`] into span fields at close. Telemetry stays strictly
/// out-of-band: the span neither observes nor perturbs the numerical
/// path, and with recording off this is a single relaxed atomic load
/// (no allocation — certified by `tests/alloc_count.rs`).
pub(crate) fn traced_solve(
    factor: &str,
    model: &LpModel,
    warm: Option<&Basis>,
    f: impl FnOnce() -> Result<Solution, SolveError>,
) -> Result<Solution, SolveError> {
    let g = llamp_obs::span("lp.solve");
    let out = f();
    if llamp_obs::is_enabled() {
        g.field_str("factor", factor);
        g.field_u64("rows", model.num_constraints() as u64);
        g.field_u64("cols", model.num_vars() as u64);
        g.field_u64("warm", u64::from(warm.is_some()));
        match &out {
            Ok(sol) => {
                let s = sol.stats();
                g.field_u64("iterations", s.iterations);
                g.field_u64("phase1_iterations", s.phase1_iterations);
                g.field_u64("pivots", s.pivots);
                g.field_u64("bound_flips", s.bound_flips);
                g.field_u64("refactorisations", s.refactorizations);
                g.field_f64("max_resync_drift", s.max_resync_drift);
            }
            Err(status) => g.field_str("status", &format!("{status:?}")),
        }
    }
    out
}

/// Re-extract a solution from a purportedly-still-optimal basis (e.g.
/// Algorithm 2's basis-stability argument after a bound move). The basis
/// is *verified*, not trusted: primal feasibility is checked at the same
/// scaled tolerance the solve path uses to trigger phase 1, and a full
/// pricing pass confirms no improving column exists. On success the
/// result is bit-identical to what a warm `solve_sparse` from the same
/// basis would report (which would run zero pivots); any verification
/// failure returns `Err` so the caller can fall back to a real solve.
pub fn reextract(
    model: &LpModel,
    opts: &SimplexOptions,
    basis: &Basis,
) -> Result<Solution, SolveError> {
    reextract_reusing(model, opts, basis, None)
}

/// [`reextract`] with the optional LU-adoption shortcut of
/// [`solve_sparse_reusing`].
pub fn reextract_reusing(
    model: &LpModel,
    opts: &SimplexOptions,
    basis: &Basis,
    reuse: Option<&RangingData>,
) -> Result<Solution, SolveError> {
    let core: Core<SparseLu> = Core::build_reusing(model, opts.clone(), Some(basis), reuse);
    if !core.warm_installed || !core.is_primal_feasible(1.0) || core.has_improving_column() {
        return Err(SolveError::Infeasible);
    }
    Ok(core.extract(model))
}

fn solve_generic<F: BasisFactor>(
    model: &LpModel,
    opts: &SimplexOptions,
    warm: Option<&Basis>,
    reuse: Option<&RangingData>,
) -> Result<Solution, SolveError> {
    let mut core: Core<F> = Core::build_reusing(model, opts.clone(), warm, reuse);
    core.arm_deadline();
    run_primal(core, model)
}

/// Drive a built [`Core`] through the primal algorithm (phase 1 if the
/// starting basis is infeasible, then phase 2) and extract the canonical
/// solution. Shared by the cold/warm primal entry points and the dual
/// simplex's fallback path, so both report bit-identical results from the
/// same starting basis.
pub(crate) fn run_primal<F: BasisFactor>(
    mut core: Core<F>,
    model: &LpModel,
) -> Result<Solution, SolveError> {
    let max_iters = core.iteration_cap();

    // Phase 1: restore primal feasibility if the starting basis violates
    // row bounds.
    if !core.is_primal_feasible(1.0) {
        match core.iterate(true, max_iters) {
            PhaseOutcome::Done => {
                if !core.is_primal_feasible(10.0) {
                    return Err(SolveError::Infeasible);
                }
            }
            PhaseOutcome::Unbounded => {
                // Phase-1 objective is bounded below by zero; an unbounded
                // ray here signals numerical failure, treated as infeasible.
                return Err(SolveError::Infeasible);
            }
            PhaseOutcome::Abort(e) => return Err(e),
        }
    }

    // Phase 2: optimise the true objective — under temporarily perturbed
    // costs first when anti-degeneracy shifting is enabled.
    let saved_costs = (core.opts.perturb > 0.0).then(|| {
        let saved = core.cost.clone();
        core.apply_cost_perturbation();
        saved
    });
    match core.iterate(false, max_iters) {
        PhaseOutcome::Done => {}
        PhaseOutcome::Unbounded => return Err(SolveError::Unbounded),
        PhaseOutcome::Abort(e) => return Err(e),
    }
    if let Some(costs) = saved_costs {
        // Exact removal: restore the true costs and re-certify (phase-2
        // entry resynchronises reduced costs from the restored vector, so
        // nothing of the perturbation survives into the reported optimum).
        core.cost = costs;
        match core.iterate(false, max_iters) {
            PhaseOutcome::Done => {}
            PhaseOutcome::Unbounded => return Err(SolveError::Unbounded),
            PhaseOutcome::Abort(e) => return Err(e),
        }
    }
    Ok(core.extract(model))
}

/// Bound-violation tolerance, scaled by the bound's magnitude. Feasibility
/// must be relative on these models: grid latencies are nanoseconds, so
/// basic values reach `1e9` where an absolute `1e-7` sits inside the
/// factorisation's recompute noise — and a noise-triggered phase 1 in one
/// factorisation backend but not the other would break cross-backend
/// determinism.
#[inline]
pub(crate) fn viol_tol(bound: f64, feas: f64) -> f64 {
    feas * (1.0 + bound.abs())
}

pub(crate) enum PhaseOutcome {
    Done,
    Unbounded,
    /// A budget or tripwire aborted the phase with this typed error
    /// (iteration/time/stall budget, numerical distress, injected fault).
    Abort(SolveError),
}

impl<F: BasisFactor> Core<F> {
    /// Effective iteration budget (`max_iterations`, or the size-scaled
    /// default when 0).
    pub(crate) fn iteration_cap(&self) -> u64 {
        if self.opts.max_iterations == 0 {
            20_000 + 50 * (self.m as u64 + self.n_total as u64)
        } else {
            self.opts.max_iterations
        }
    }

    /// Start the wall clock for `SimplexOptions::time_limit_ms` (no-op
    /// when the budget is disabled).
    pub(crate) fn arm_deadline(&mut self) {
        self.deadline = (self.opts.time_limit_ms > 0).then(|| {
            std::time::Instant::now() + std::time::Duration::from_millis(self.opts.time_limit_ms)
        });
    }

    /// Shift every cost away from zero by a deterministic per-column
    /// amount (`SimplexOptions::perturb` scale), breaking the dual
    /// degeneracy of massively tied models. The caller saves the original
    /// vector and restores it before the clean-up phase — removal is
    /// exact by construction.
    pub(crate) fn apply_cost_perturbation(&mut self) {
        let scale = self.opts.perturb;
        for (j, c) in self.cost.iter_mut().enumerate() {
            // Weyl-style low-discrepancy ξ_j ∈ [0.5, 1.5): deterministic,
            // index-dependent, identical across factorisation backends.
            let xi = 0.5 + (j as u64).wrapping_mul(0x9E3779B97F4A7C15) as f64 / 2f64.powi(64);
            let shift = scale * (1.0 + c.abs()) * xi;
            *c += if *c >= 0.0 { shift } else { -shift };
        }
    }

    /// Build a solver core for `model`, optionally installing a warm
    /// basis, and optionally adopting a retained [`RangingData`]'s LU at
    /// installation (see [`solve_sparse_reusing`]).
    pub(crate) fn build_reusing(
        model: &LpModel,
        opts: SimplexOptions,
        warm: Option<&Basis>,
        reuse: Option<&RangingData>,
    ) -> Self {
        let m = model.rows.len();
        let n_struct = model.cols.len();
        let n_total = n_struct + m;
        let sign = match model.sense {
            Objective::Minimize => 1.0,
            Objective::Maximize => -1.0,
        };

        // Column-wise extended matrix: structural columns from the rows,
        // then one logical column (+1 at its row; `aᵀx − s = 0` i.e. the
        // logical coefficient is −1, folded in here).
        let mut counts = vec![0usize; n_total];
        for row in &model.rows {
            for &(v, _) in &row.terms {
                counts[v as usize] += 1;
            }
        }
        for i in 0..m {
            counts[n_struct + i] = 1;
        }
        let mut col_start = vec![0usize; n_total + 1];
        for j in 0..n_total {
            col_start[j + 1] = col_start[j] + counts[j];
        }
        let nnz = col_start[n_total];
        let mut col_rows = vec![0u32; nnz];
        let mut col_vals = vec![0.0f64; nnz];
        let mut fill = col_start.clone();
        for (i, row) in model.rows.iter().enumerate() {
            for &(v, c) in &row.terms {
                let p = fill[v as usize];
                col_rows[p] = i as u32;
                col_vals[p] = c;
                fill[v as usize] += 1;
            }
        }
        for i in 0..m {
            let p = fill[n_struct + i];
            col_rows[p] = i as u32;
            col_vals[p] = -1.0;
            fill[n_struct + i] += 1;
        }

        // Row-wise mirror of the structural part (logicals stay implicit).
        let struct_nnz: usize = model.rows.iter().map(|r| r.terms.len()).sum();
        let mut row_start = vec![0usize; m + 1];
        for (i, row) in model.rows.iter().enumerate() {
            row_start[i + 1] = row_start[i] + row.terms.len();
        }
        let mut row_cols = vec![0u32; struct_nnz];
        let mut row_vals = vec![0.0f64; struct_nnz];
        for (i, row) in model.rows.iter().enumerate() {
            for (p, &(v, c)) in (row_start[i]..).zip(row.terms.iter()) {
                row_cols[p] = v;
                row_vals[p] = c;
            }
        }

        let mut lb = Vec::with_capacity(n_total);
        let mut ub = Vec::with_capacity(n_total);
        let mut cost = Vec::with_capacity(n_total);
        for c in &model.cols {
            lb.push(c.lb);
            ub.push(c.ub);
            cost.push(sign * c.obj);
        }
        for r in &model.rows {
            lb.push(r.lb);
            ub.push(r.ub);
            cost.push(0.0);
        }

        let mut core = Self {
            m,
            n_struct,
            n_total,
            col_start,
            col_rows,
            col_vals,
            row_start,
            row_cols,
            row_vals,
            lb,
            ub,
            cost,
            basis: Vec::new(),
            in_basis: vec![-1i32; n_total],
            status: vec![NbStatus::Lower; n_total],
            x: vec![0.0; n_total],
            factor: F::new(m),
            iterations: 0,
            pivots_since_refactor: 0,
            warm_installed: false,
            factor_fresh: false,
            d: vec![0.0; n_total],
            devex: vec![1.0; n_total],
            cand: Vec::new(),
            cb1: vec![0.0; m],
            infeas_count: 0,
            bland_active: false,
            bland_engagements: 0,
            singular_refactors: 0,
            distressed: None,
            deadline: None,
            w: IndexedVec::new(m),
            rho: IndexedVec::new(m),
            alpha: IndexedVec::new(n_total),
            delta: IndexedVec::new(m),
            cb_buf: vec![0.0; m],
            y_buf: vec![0.0; m],
            stats: SolveStats {
                rows: m as u64,
                ..SolveStats::default()
            },
            opts,
        };

        let warm_ok = warm.is_some_and(|b| core.try_install_basis(b, reuse));
        if !warm_ok {
            core.install_default_basis();
        }
        core.warm_installed = warm_ok;
        core.recompute_basics();
        core
    }

    /// Cold start: nonbasic structural variables at their bound nearest
    /// zero, logical variables forming the basis (`B = −I`).
    fn install_default_basis(&mut self) {
        let (m, n_struct) = (self.m, self.n_struct);
        for j in 0..n_struct {
            let (l, u) = (self.lb[j], self.ub[j]);
            let (st, xj) = if l.is_finite() && u.is_finite() {
                if l.abs() <= u.abs() {
                    (NbStatus::Lower, l)
                } else {
                    (NbStatus::Upper, u)
                }
            } else if l.is_finite() {
                (NbStatus::Lower, l)
            } else if u.is_finite() {
                (NbStatus::Upper, u)
            } else {
                (NbStatus::FreeZero, 0.0)
            };
            self.status[j] = st;
            self.x[j] = xj;
            self.in_basis[j] = -1;
        }
        self.basis.clear();
        for i in 0..m {
            let j = n_struct + i;
            self.basis.push(j);
            self.in_basis[j] = i as i32;
            self.status[j] = NbStatus::Basic;
        }
        let ok = self.refactorize();
        debug_assert!(ok, "the all-logical basis is always nonsingular");
    }

    /// Whether `reuse` retains an LU of exactly the basis matrix about to
    /// be installed: same basis positions, bit-identical constraint
    /// matrix, and a strict (standard-threshold) factorisation. Under
    /// those conditions the retained LU *is* what refactorisation would
    /// rebuild, so adopting it changes no bits downstream.
    fn reuse_matches(&self, reuse: &RangingData, basis: &[usize]) -> bool {
        self.opts.lu_reuse
            && reuse.strict
            && reuse.basis == basis
            && reuse.col_start == self.col_start
            && reuse.col_rows == self.col_rows
            && reuse.col_vals.len() == self.col_vals.len()
            && reuse
                .col_vals
                .iter()
                .zip(&self.col_vals)
                .all(|(a, b)| a.to_bits() == b.to_bits())
    }

    /// Try to start from a previous solve's basis. Statuses are
    /// normalised against the *current* bounds (a bound that became
    /// infinite demotes the status) and the basis matrix is refactorised;
    /// any mismatch falls back to the cold start. When `reuse` retains an
    /// LU of this exact basis matrix, it is adopted in place of the
    /// refactorisation (counted on the `lp.lu_reuse` obs counter).
    fn try_install_basis(&mut self, warm: &Basis, reuse: Option<&RangingData>) -> bool {
        if warm.cols.len() != self.n_struct || warm.rows.len() != self.m {
            return false;
        }
        let mut basis = Vec::with_capacity(self.m);
        let mut status = vec![NbStatus::Lower; self.n_total];
        let mut x = vec![0.0; self.n_total];
        for j in 0..self.n_total {
            let s = if j < self.n_struct {
                warm.cols[j]
            } else {
                warm.rows[j - self.n_struct]
            };
            let (l, u) = (self.lb[j], self.ub[j]);
            let st = match s {
                VarStatus::Basic => NbStatus::Basic,
                VarStatus::AtLower if l.is_finite() => NbStatus::Lower,
                VarStatus::AtUpper if u.is_finite() => NbStatus::Upper,
                // Bound vanished (or FreeZero): rest on the nearest
                // remaining finite bound, or free at zero.
                _ => {
                    if l.is_finite() {
                        NbStatus::Lower
                    } else if u.is_finite() {
                        NbStatus::Upper
                    } else {
                        NbStatus::FreeZero
                    }
                }
            };
            status[j] = st;
            x[j] = match st {
                NbStatus::Basic => {
                    basis.push(j);
                    0.0
                }
                NbStatus::Lower => l,
                NbStatus::Upper => u,
                NbStatus::FreeZero => 0.0,
            };
        }
        if basis.len() != self.m {
            return false;
        }
        // Install tentatively; refactorisation is the singularity check.
        // A retained LU of this exact basis matrix skips it: the adopted
        // factorisation already proves nonsingularity.
        let adopted =
            reuse.is_some_and(|r| self.reuse_matches(r, &basis) && self.factor.adopt(&r.lu));
        let saved_basis = std::mem::replace(&mut self.basis, basis);
        if adopted {
            self.pivots_since_refactor = 0;
            self.factor_fresh = true;
            llamp_obs::counter("lp.lu_reuse", 1);
        } else if !self.refactorize() {
            self.basis = saved_basis;
            return false;
        }
        self.status = status;
        self.x = x;
        for v in &mut self.in_basis {
            *v = -1;
        }
        for (i, &j) in self.basis.iter().enumerate() {
            self.in_basis[j] = i as i32;
        }
        true
    }

    /// Refactorise the basis, resetting the eta counter on success.
    pub(crate) fn refactorize(&mut self) -> bool {
        let ok = self.factor.refactor(
            ColsView {
                start: &self.col_start,
                rows: &self.col_rows,
                vals: &self.col_vals,
            },
            &self.basis,
        );
        if ok {
            self.pivots_since_refactor = 0;
            self.factor_fresh = true;
            // The install-time factorisation of a fresh solve (iterations
            // still 0) is setup, not solver behaviour: the counter reports
            // only mid-solve (periodic / eta-growth) refactorisations, as
            // documented on `SolveStats`.
            if self.iterations > 0 {
                self.stats.refactorizations += 1;
            }
        }
        ok
    }

    /// Recompute all basic variable values from the nonbasic assignment:
    /// `x_B = B⁻¹ (0 − A_N x_N)`.
    pub(crate) fn recompute_basics(&mut self) {
        let m = self.m;
        let mut r = vec![0.0; m];
        for j in 0..self.n_total {
            if self.in_basis[j] >= 0 || self.x[j] == 0.0 {
                continue;
            }
            let xj = self.x[j];
            for idx in self.col_start[j]..self.col_start[j + 1] {
                r[self.col_rows[idx] as usize] -= self.col_vals[idx] * xj;
            }
        }
        let xb = self.factor.ftran_dense(&r);
        for i in 0..m {
            self.x[self.basis[i]] = xb[i];
        }
    }

    /// Whether every basic variable sits within its (magnitude-scaled,
    /// `mult`-relaxed) bounds.
    pub(crate) fn is_primal_feasible(&self, mult: f64) -> bool {
        let feas = self.opts.feas_tol * mult;
        self.basis.iter().all(|&b| {
            let v = self.x[b];
            v >= self.lb[b] - viol_tol(self.lb[b], feas)
                && v <= self.ub[b] + viol_tol(self.ub[b], feas)
        })
    }

    fn dot_col(
        col_start: &[usize],
        col_rows: &[u32],
        col_vals: &[f64],
        j: usize,
        y: &[f64],
    ) -> f64 {
        let mut acc = 0.0;
        for idx in col_start[j]..col_start[j + 1] {
            acc += col_vals[idx] * y[col_rows[idx] as usize];
        }
        acc
    }

    /// Phase-1 cost class of column `b` given its current value:
    /// −1 below the (scaled-tolerance) lower bound, +1 above the upper.
    #[inline]
    fn p1_class(&self, b: usize) -> f64 {
        let v = self.x[b];
        let feas = self.opts.feas_tol;
        if v < self.lb[b] - viol_tol(self.lb[b], feas) {
            -1.0
        } else if v > self.ub[b] + viol_tol(self.ub[b], feas) {
            1.0
        } else {
            0.0
        }
    }

    /// Rebuild the phase-1 basic cost vector and infeasibility count from
    /// scratch (phase entry and after every refactorisation, where all
    /// basic values move slightly). Returns whether any cost changed —
    /// when it did, the incremental reduced costs are stale *by objective
    /// change*, not by drift, so the following resync must not count the
    /// gap as incremental error.
    fn rebuild_cb1(&mut self) -> bool {
        self.infeas_count = 0;
        let mut changed = false;
        for i in 0..self.m {
            let c = self.p1_class(self.basis[i]);
            if c != self.cb1[i] {
                changed = true;
            }
            self.cb1[i] = c;
            if c != 0.0 {
                self.infeas_count += 1;
            }
        }
        changed
    }

    /// Recompute the reduced-cost vector from scratch for the given
    /// phase. When `record_drift` is set, the worst relative gap between
    /// the incremental values and the fresh ones is folded into
    /// [`SolveStats::max_resync_drift`] — the observable bound on
    /// incremental-pricing error.
    pub(crate) fn resync_d(&mut self, phase1: bool, record_drift: bool) {
        for i in 0..self.m {
            self.cb_buf[i] = if phase1 {
                self.cb1[i]
            } else {
                self.cost[self.basis[i]]
            };
        }
        self.factor.btran_dense_into(&self.cb_buf, &mut self.y_buf);
        let mut d = std::mem::take(&mut self.d);
        let mut drift = 0.0f64;
        for j in 0..self.n_total {
            if self.status[j] == NbStatus::Basic {
                d[j] = 0.0;
                continue;
            }
            let cj = if phase1 { 0.0 } else { self.cost[j] };
            let fresh = cj
                - Self::dot_col(
                    &self.col_start,
                    &self.col_rows,
                    &self.col_vals,
                    j,
                    &self.y_buf,
                );
            if record_drift {
                let gap = (fresh - d[j]).abs() / (1.0 + fresh.abs());
                drift = drift.max(gap);
            }
            d[j] = fresh;
        }
        self.d = d;
        if record_drift {
            self.stats.max_resync_drift = self.stats.max_resync_drift.max(drift);
            if self.opts.drift_limit > 0.0 && drift > self.opts.drift_limit {
                self.distressed = Some(Distress::ResyncDrift);
            }
        }
    }

    /// Enter a phase: build phase costs, resynchronise reduced costs,
    /// reset the Devex framework and candidate list.
    fn enter_phase(&mut self, phase1: bool) {
        if phase1 {
            self.rebuild_cb1();
        }
        self.resync_d(phase1, false);
        self.devex.iter_mut().for_each(|w| *w = 1.0);
        self.cand.clear();
        self.bland_active = false;
    }

    /// Eligibility of a nonbasic column under the current reduced costs:
    /// the entering direction, or `None`.
    #[inline]
    fn eligible(&self, j: usize) -> Option<f64> {
        let opt = self.opts.opt_tol;
        let dj = self.d[j];
        match self.status[j] {
            NbStatus::Basic => None,
            NbStatus::Lower => (dj < -opt).then_some(1.0),
            NbStatus::Upper => (dj > opt).then_some(-1.0),
            NbStatus::FreeZero => {
                if dj < -opt {
                    Some(1.0)
                } else if dj > opt {
                    Some(-1.0)
                } else {
                    None
                }
            }
        }
    }

    /// Refill the candidate list with every eligible column (ascending).
    fn refill_candidates(&mut self) {
        let mut cand = std::mem::take(&mut self.cand);
        cand.clear();
        for j in 0..self.n_total {
            if self.eligible(j).is_some() {
                cand.push(j as u32);
            }
        }
        self.cand = cand;
    }

    /// Scan the candidate list for the best Devex-scored entering column
    /// (`d²/w`, epsilon ties toward the lowest index), pruning members
    /// that became basic or ineligible.
    fn scan_candidates(&mut self) -> Option<(usize, f64)> {
        let mut cand = std::mem::take(&mut self.cand);
        let mut best: Option<(usize, f64, f64)> = None; // (col, score, dir)
        cand.retain(|&ju| {
            let j = ju as usize;
            match self.eligible(j) {
                None => false,
                Some(dir) => {
                    let score = self.d[j] * self.d[j] / self.devex[j];
                    let better = match best {
                        None => true,
                        Some((_, bs, _)) => score > bs * (1.0 + PRICE_TIE_REL),
                    };
                    if better {
                        best = Some((j, score, dir));
                    }
                    true
                }
            }
        });
        self.cand = cand;
        best.map(|(j, _, dir)| (j, dir))
    }

    /// Pick the entering column, or `None` at (phase-)optimality. Cheap
    /// candidate scans serve most iterations; a full refill runs on the
    /// [`PARTIAL_REFILL_EVERY`] cadence, when the list runs dry, and to
    /// confirm optimality (after a from-scratch reduced-cost resync, so
    /// incremental drift can never fake convergence).
    fn select_entering(&mut self, phase1: bool, use_bland: bool) -> Option<(usize, f64)> {
        if use_bland {
            // Least-index rule (termination guarantee). The reduced costs
            // were resynchronised when the Bland streak began.
            self.stats.pricing_full_scans += 1;
            for j in 0..self.n_total {
                if let Some(dir) = self.eligible(j) {
                    return Some((j, dir));
                }
            }
            return None;
        }
        let refill = self.cand.is_empty() || self.iterations.is_multiple_of(PARTIAL_REFILL_EVERY);
        if !refill {
            self.stats.pricing_candidate_scans += 1;
            if let Some(sel) = self.scan_candidates() {
                return Some(sel);
            }
        }
        self.stats.pricing_full_scans += 1;
        self.refill_candidates();
        if let Some(sel) = self.scan_candidates() {
            return Some(sel);
        }
        // Optimality claim: confirm on freshly recomputed reduced costs.
        self.resync_d(phase1, true);
        self.stats.pricing_full_scans += 1;
        self.refill_candidates();
        self.scan_candidates()
    }

    /// Scatter the pivot row `α = Aᵀρ` (column space) from a row-space
    /// BTRAN result, using the CSR mirror plus the implicit −1 logical
    /// diagonal.
    pub(crate) fn scatter_alpha(&mut self) {
        self.alpha.reset(self.n_total);
        for &iu in self.rho.indices() {
            let i = iu as usize;
            let ri = self.rho.get(i);
            if ri == 0.0 {
                continue;
            }
            for idx in self.row_start[i]..self.row_start[i + 1] {
                self.alpha
                    .add(self.row_cols[idx] as usize, ri * self.row_vals[idx]);
            }
            self.alpha.add(self.n_struct + i, -ri);
        }
    }

    /// Fold phase-1 basic-cost deltas (already written into `cb1`,
    /// accumulated in `self.delta` as a position-space vector) into the
    /// incremental reduced costs: `d ← d − Aᵀ B⁻ᵀ Σ δᵢeᵢ`. One batched
    /// sparse BTRAN regardless of how many basic variables crossed a
    /// bound this iteration.
    fn apply_cost_deltas(&mut self) {
        self.factor.btran_sparse(&self.delta, &mut self.rho);
        self.stats.btran_calls += 1;
        self.stats.btran_nnz += self.rho.nnz() as u64;
        self.scatter_alpha();
        for &ju in self.alpha.indices() {
            let j = ju as usize;
            if self.status[j] != NbStatus::Basic {
                self.d[j] -= self.alpha.get(j);
            }
        }
    }

    /// Optimality probe used by [`reextract`]: does a phase-2 improving
    /// column exist for the current basis? Computed from scratch (this is
    /// a cold, once-per-query path).
    fn has_improving_column(&self) -> bool {
        let opt = self.opts.opt_tol;
        let mut cb = vec![0.0; self.m];
        for (i, &b) in self.basis.iter().enumerate() {
            cb[i] = self.cost[b];
        }
        let y = self.factor.btran_dense(&cb);
        for j in 0..self.n_total {
            let st = self.status[j];
            if st == NbStatus::Basic {
                continue;
            }
            let d = self.cost[j]
                - Self::dot_col(&self.col_start, &self.col_rows, &self.col_vals, j, &y);
            let improving = match st {
                NbStatus::Lower => d < -opt,
                NbStatus::Upper => d > opt,
                NbStatus::FreeZero => d.abs() > opt,
                NbStatus::Basic => unreachable!(),
            };
            if improving {
                return true;
            }
        }
        false
    }

    /// The bound (and whether it is the upper one) at which basic position
    /// `i` blocks a step that changes it at `rate` per unit step.
    /// Phase-aware: an infeasible basic variable blocks at the bound it is
    /// approaching and never at one behind it.
    fn blocking_bound(&self, i: usize, rate: f64, phase1: bool, feas: f64) -> Option<(f64, bool)> {
        let b = self.basis[i];
        let xb = self.x[b];
        let (lbi, ubi) = (self.lb[b], self.ub[b]);
        if rate > 0.0 {
            // x_b increases.
            if phase1 && xb < lbi - viol_tol(lbi, feas) {
                // Infeasible below: blocks when it reaches lb.
                Some((lbi, false))
            } else if phase1 && xb > ubi + viol_tol(ubi, feas) {
                // Already above ub and moving further up: no bound ahead
                // to cross (its cost is in the pricing).
                None
            } else if ubi.is_finite() {
                Some((ubi, true))
            } else {
                None
            }
        } else {
            // x_b decreases.
            if phase1 && xb > ubi + viol_tol(ubi, feas) {
                Some((ubi, true))
            } else if phase1 && xb < lbi - viol_tol(lbi, feas) {
                None
            } else if lbi.is_finite() {
                Some((lbi, false))
            } else {
                None
            }
        }
    }

    /// Run simplex iterations for one phase. `phase1` selects infeasibility
    /// costs instead of the model objective.
    pub(crate) fn iterate(&mut self, phase1: bool, max_iters: u64) -> PhaseOutcome {
        let feas = self.opts.feas_tol;
        let mut degenerate_streak = 0u32;
        self.enter_phase(phase1);

        loop {
            if self.iterations >= max_iters {
                return PhaseOutcome::Abort(SolveError::IterationLimit);
            }
            if llamp_faults::should_inject("solve.stall") {
                // The `solve.stall` site models a wedged solve: abort with
                // the typed injected-fault error the fallback ladder (and
                // chaos suite) expects.
                return PhaseOutcome::Abort(SolveError::Injected);
            }
            if self.opts.stall_iters > 0 && degenerate_streak as u64 >= self.opts.stall_iters {
                return PhaseOutcome::Abort(SolveError::Stalled);
            }
            if let Some(deadline) = self.deadline {
                // Amortise the clock read: one syscall per 64 iterations.
                if self.iterations & 63 == 0 && std::time::Instant::now() > deadline {
                    return PhaseOutcome::Abort(SolveError::TimeLimit);
                }
            }
            self.iterations += 1;
            if phase1 {
                self.stats.phase1_iterations += 1;
                if self.infeas_count == 0 {
                    // Every basic variable is back inside its bounds.
                    return PhaseOutcome::Done;
                }
            }

            let use_bland = degenerate_streak >= self.opts.bland_after;
            if use_bland && !self.bland_active {
                // Bland's termination argument needs trustworthy reduced
                // costs: resynchronise once per streak.
                self.resync_d(phase1, true);
                self.bland_active = true;
                self.bland_engagements += 1;
                if self.opts.bland_streak_limit > 0
                    && self.bland_engagements > self.opts.bland_streak_limit
                {
                    return PhaseOutcome::Abort(SolveError::Distress(Distress::BlandStreak));
                }
            }
            if let Some(d) = self.distressed.take() {
                // A drift-recording resync (Bland engagement or
                // refactorisation) found the incremental reduced costs
                // untrustworthy: refuse to certify anything from them.
                return PhaseOutcome::Abort(SolveError::Distress(d));
            }
            let entering = self.select_entering(phase1, use_bland);

            let Some((q, dir)) = entering else {
                // No improving column (confirmed on fresh reduced costs):
                // this phase is optimal (for phase 1 the caller checks
                // whether infeasibility reached ~zero).
                return PhaseOutcome::Done;
            };

            // FTRAN the entering column into the solver-owned workspace;
            // the sorted support drives everything downstream.
            {
                let view = ColsView {
                    start: &self.col_start,
                    rows: &self.col_rows,
                    vals: &self.col_vals,
                };
                self.factor.ftran_col(view, q, &mut self.w);
            }
            self.w.sort_indices();
            self.stats.ftran_calls += 1;
            self.stats.ftran_nnz += self.w.nnz() as u64;

            // Two-pass Harris ratio test over the nonzeros of `w`.
            // `t_room` caps the step at a full bound traversal of the
            // entering variable.
            let t_room = if self.lb[q].is_finite() && self.ub[q].is_finite() {
                self.ub[q] - self.lb[q]
            } else {
                INF
            };
            // Pass 1: the largest step under feas-expanded bounds.
            let mut t_max = t_room;
            for (i, wi) in self.w.iter() {
                let rate = -dir * wi;
                if rate.abs() <= self.opts.pivot_tol {
                    continue;
                }
                if let Some((bound, _)) = self.blocking_bound(i, rate, phase1, feas) {
                    let xb = self.x[self.basis[i]];
                    let expanded = (bound - xb) / rate + viol_tol(bound, feas) / rate.abs();
                    if expanded < t_max {
                        t_max = expanded;
                    }
                }
            }
            if t_max.is_infinite() {
                return PhaseOutcome::Unbounded;
            }
            let t_max = t_max.max(0.0);
            // Pass 2: the largest-magnitude pivot among rows blocking
            // within t_max, near-ties keeping the lowest basis position
            // (the support is sorted ascending).
            let mut leaving: Option<(usize, bool)> = None;
            let mut leave_t = 0.0f64;
            let mut leave_w = 0.0f64;
            for (i, wi) in self.w.iter() {
                let rate = -dir * wi;
                if rate.abs() <= self.opts.pivot_tol {
                    continue;
                }
                if let Some((bound, at_upper)) = self.blocking_bound(i, rate, phase1, feas) {
                    let xb = self.x[self.basis[i]];
                    let strict = ((bound - xb) / rate).max(0.0);
                    if strict <= t_max {
                        let better = match leaving {
                            None => true,
                            Some(_) => wi.abs() > leave_w * (1.0 + RATIO_TIE_REL),
                        };
                        if better {
                            leaving = Some((i, at_upper));
                            leave_t = strict;
                            leave_w = wi.abs();
                        }
                    }
                }
            }

            let t_limit = match leaving {
                // No blocking row within reach: the entering variable
                // traverses its whole box (t_room is finite here, or
                // t_max would have stayed infinite).
                None => t_room,
                Some(_) => leave_t,
            };
            if t_limit <= 1e-12 {
                degenerate_streak += 1;
            } else {
                degenerate_streak = 0;
                self.bland_active = false;
            }

            #[cfg(debug_assertions)]
            if std::env::var_os("LLAMP_LP_TRACE").is_some() {
                eprintln!(
                    "iter={} phase1={} q={} status={:?} dir={} t_limit={} leaving={:?} x_q={}",
                    self.iterations,
                    phase1,
                    q,
                    self.status[q],
                    dir,
                    t_limit,
                    leaving.map(|(r, up)| (r, self.basis[r], up)),
                    self.x[q]
                );
            }
            // Apply the step.
            let step = dir * t_limit;
            self.x[q] += step;
            for (i, wi) in self.w.iter() {
                if wi != 0.0 {
                    let b = self.basis[i];
                    self.x[b] -= step * wi;
                }
            }

            match leaving {
                None => {
                    // Bound flip: x_q traversed its whole box. The basis
                    // (and hence d) is unchanged; only phase-1 costs of
                    // basic variables that crossed a bound need folding.
                    self.stats.bound_flips += 1;
                    self.status[q] = match self.status[q] {
                        NbStatus::Lower => NbStatus::Upper,
                        NbStatus::Upper => NbStatus::Lower,
                        s => s,
                    };
                    if phase1 {
                        self.collect_cost_deltas(None);
                        if self.delta.nnz() > 0 {
                            self.apply_cost_deltas();
                        }
                    }
                }
                Some((r, at_upper)) => {
                    self.stats.pivots += 1;
                    let out = self.basis[r];
                    let w_r = self.w.get(r);
                    let old_r_class = if phase1 { self.cb1[r] } else { 0.0 };

                    // Pivot row (against the *current* basis) for the
                    // incremental reduced-cost and Devex updates.
                    {
                        let mut unit = std::mem::take(&mut self.delta);
                        unit.reset(self.m);
                        unit.set(r, 1.0);
                        self.factor.btran_sparse(&unit, &mut self.rho);
                        unit.clear();
                        self.delta = unit;
                    }
                    self.stats.btran_calls += 1;
                    self.stats.btran_nnz += self.rho.nnz() as u64;
                    self.scatter_alpha();

                    // d ← d − θ_d·α  (θ_d = d_q / α_q; α_q ≡ w_r).
                    let theta_d = self.d[q] / w_r;
                    let wq_ref = self.devex[q].max(1.0);
                    for &ju in self.alpha.indices() {
                        let j = ju as usize;
                        if self.status[j] == NbStatus::Basic || j == q {
                            continue;
                        }
                        let aj = self.alpha.get(j);
                        if aj == 0.0 {
                            continue;
                        }
                        self.d[j] -= theta_d * aj;
                        // Devex reference-weight update.
                        let ratio = aj / w_r;
                        let cand_w = ratio * ratio * wq_ref;
                        if cand_w > self.devex[j] {
                            self.devex[j] = cand_w;
                        }
                    }
                    self.d[q] = 0.0;
                    // The leaving variable lands exactly on its bound; its
                    // phase-1 cost contribution (if it was infeasible)
                    // leaves the basic cost vector with it.
                    self.d[out] = -theta_d - old_r_class;
                    let w_out = (wq_ref / (w_r * w_r)).max(1.0);
                    self.devex[out] = w_out;
                    if w_out > DEVEX_RESET {
                        self.devex.iter_mut().for_each(|v| *v = 1.0);
                        self.stats.devex_resets += 1;
                    }

                    // Snap the leaving variable exactly onto its bound.
                    self.x[out] = if at_upper { self.ub[out] } else { self.lb[out] };
                    self.status[out] = if at_upper {
                        NbStatus::Upper
                    } else {
                        NbStatus::Lower
                    };
                    self.in_basis[out] = -1;
                    self.basis[r] = q;
                    self.in_basis[q] = r as i32;
                    self.status[q] = NbStatus::Basic;
                    self.factor.update(&self.w, r);
                    self.factor_fresh = false;
                    if phase1 {
                        // Position r now carries the entering variable at
                        // cost 0 (θ_d already priced that in); the old
                        // occupant's infeasibility left with it.
                        if old_r_class != 0.0 {
                            self.infeas_count -= 1;
                        }
                        self.cb1[r] = 0.0;
                        self.collect_cost_deltas(Some(r));
                        if self.delta.nnz() > 0 {
                            self.apply_cost_deltas();
                        }
                    }
                    #[cfg(debug_assertions)]
                    if std::env::var_os("LLAMP_LP_CHECK").is_some() {
                        let incr: Vec<f64> = self.basis.iter().map(|&b| self.x[b]).collect();
                        self.recompute_basics();
                        for (i, &b) in self.basis.iter().enumerate() {
                            assert!((incr[i] - self.x[b]).abs() < 1e-6 * (1.0 + incr[i].abs()),
                                "x_B[{i}] (col {b}) drift: incremental {} vs fresh {} at iter {} phase1={phase1}",
                                incr[i], self.x[b], self.iterations);
                        }
                    }
                    self.pivots_since_refactor += 1;
                    // Periodic refactorisation, pulled forward when the
                    // eta file outgrows the fresh factorisation. A
                    // (numerically) singular refactorisation keeps the
                    // eta-updated factor, mirroring the historic dense
                    // behaviour.
                    let eta_heavy = self.pivots_since_refactor >= MIN_PIVOTS_BEFORE_ETA_REFACTOR
                        && self.factor.factor_nnz() > 0
                        && self.factor.update_nnz() > 2 * self.factor.factor_nnz();
                    if self.pivots_since_refactor >= self.opts.refactor_every || eta_heavy {
                        if self.refactorize() {
                            self.recompute_basics();
                            // All basic values moved (slightly): rebuild the
                            // phase-1 classification and resynchronise the
                            // incremental reduced costs. Drift is recorded
                            // only when the phase-1 costs did not flip — a
                            // flipped cost changes the objective itself, so
                            // the gap would not measure incremental error.
                            let costs_flipped = phase1 && self.rebuild_cb1();
                            self.resync_d(phase1, !costs_flipped);
                        } else {
                            // Singular refactorisation: keep the eta-updated
                            // factor (historic behaviour), but count it — a
                            // basis that keeps refusing to factor is
                            // numerical distress, not bad luck.
                            self.singular_refactors += 1;
                            if self.opts.singular_limit > 0
                                && self.singular_refactors >= self.opts.singular_limit
                            {
                                return PhaseOutcome::Abort(SolveError::Distress(
                                    Distress::SingularFactor,
                                ));
                            }
                        }
                    }
                }
            }
        }
    }

    /// Reclassify the phase-1 cost of every basic position whose value
    /// just changed (the FTRAN support, minus the freshly exchanged
    /// position `skip`, which the pivot handled), accumulating the cost
    /// deltas into `self.delta` and maintaining the infeasibility count.
    fn collect_cost_deltas(&mut self, skip: Option<usize>) {
        let mut delta = std::mem::take(&mut self.delta);
        delta.reset(self.m);
        // Iterate the FTRAN support without borrowing `self.w` across the
        // mutation of `cb1`/`infeas_count` (indices are read up front).
        for k in 0..self.w.indices().len() {
            let i = self.w.indices()[k] as usize;
            if skip == Some(i) {
                continue;
            }
            let old = self.cb1[i];
            let new = self.p1_class(self.basis[i]);
            if new != old {
                delta.add(i, new - old);
                self.cb1[i] = new;
                if old != 0.0 {
                    self.infeas_count -= 1;
                }
                if new != 0.0 {
                    self.infeas_count += 1;
                }
            }
        }
        // The freshly exchanged position enters at cost 0; if the ratio
        // test left it (tolerance-)infeasible after all, classify it too.
        if let Some(r) = skip {
            let new = self.p1_class(self.basis[r]);
            if new != self.cb1[r] {
                delta.add(r, new - self.cb1[r]);
                if self.cb1[r] != 0.0 {
                    self.infeas_count -= 1;
                }
                if new != 0.0 {
                    self.infeas_count += 1;
                }
                self.cb1[r] = new;
            }
        }
        self.delta = delta;
    }

    /// Canonical extraction: report the optimum as a pure function of
    /// `(model, final basis)`. The basis is re-ordered by ascending
    /// column, nonbasic values are snapped exactly onto their bounds, and
    /// every reported quantity is recomputed from a fresh sparse LU —
    /// identical regardless of which factorisation ran the pivots.
    pub(crate) fn extract(mut self, model: &LpModel) -> Solution {
        let sign = match model.sense {
            Objective::Minimize => 1.0,
            Objective::Maximize => -1.0,
        };
        let m = self.m;
        let n = self.n_struct;

        // When the solver's own factorisation is pristine (no eta
        // updates) and its basis is already in ascending column order —
        // true for any zero-pivot warm start, whose installation
        // enumerates columns ascending — that LU *is* bit-for-bit the
        // factorisation the canonical re-factor below would rebuild.
        // Take it over instead of factorising the same matrix again.
        let taken = if self.opts.lu_reuse
            && self.factor_fresh
            && self.basis.windows(2).all(|w| w[0] < w[1])
        {
            self.factor.take_sparse_lu()
        } else {
            None
        };
        self.basis.sort_unstable();
        for (i, &b) in self.basis.iter().enumerate() {
            self.in_basis[b] = i as i32;
        }
        for j in 0..self.n_total {
            match self.status[j] {
                NbStatus::Basic => {}
                NbStatus::Lower => self.x[j] = self.lb[j],
                NbStatus::Upper => self.x[j] = self.ub[j],
                NbStatus::FreeZero => self.x[j] = 0.0,
            }
        }
        let view = ColsView {
            start: &self.col_start,
            rows: &self.col_rows,
            vals: &self.col_vals,
        };
        let (lu, strict) = match taken {
            Some(lu) => {
                llamp_obs::counter("lp.lu_reuse", 1);
                (lu, true)
            }
            None => {
                let mut lu = SparseLu::new(m);
                // A basis the solver itself maintained is nonsingular; if
                // the fresh LU is numerically borderline (pivot under the
                // default threshold), retry accepting any nonzero pivot so
                // extraction degrades to reduced accuracy rather than
                // failing — matching the historic dense path, which
                // reported from its stale inverse.
                let strict = lu.refactor(view, &self.basis);
                if !strict {
                    let ok = lu.refactor_min_pivot(view, &self.basis, 0.0);
                    assert!(ok, "exactly singular basis at extraction");
                }
                (lu, strict)
            }
        };

        // x_B = B⁻¹ (0 − A_N x_N).
        let mut r = vec![0.0; m];
        for j in 0..self.n_total {
            if self.in_basis[j] >= 0 || self.x[j] == 0.0 {
                continue;
            }
            let xj = self.x[j];
            for idx in self.col_start[j]..self.col_start[j + 1] {
                r[self.col_rows[idx] as usize] -= self.col_vals[idx] * xj;
            }
        }
        let xb = lu.ftran_dense(&r);
        for (i, &b) in self.basis.iter().enumerate() {
            self.x[b] = xb[i];
        }

        let mut cb = vec![0.0; m];
        for (i, &b) in self.basis.iter().enumerate() {
            cb[i] = self.cost[b];
        }
        let y = lu.btran_dense(&cb);

        let mut x = Vec::with_capacity(n);
        let mut reduced = Vec::with_capacity(n);
        let mut statuses = Vec::with_capacity(n);
        let mut objective = 0.0;
        for j in 0..n {
            x.push(self.x[j]);
            objective += model.cols[j].obj * self.x[j];
            let d_int = self.cost[j]
                - Self::dot_col(&self.col_start, &self.col_rows, &self.col_vals, j, &y);
            reduced.push(sign * d_int);
            statuses.push(self.status[j].to_var_status());
        }

        let mut duals = Vec::with_capacity(m);
        let mut activity = Vec::with_capacity(m);
        let mut row_lb = Vec::with_capacity(m);
        let mut row_ub = Vec::with_capacity(m);
        let mut row_statuses = Vec::with_capacity(m);
        for i in 0..m {
            // Logical column i has coefficient −1: reduced cost of the
            // logical is 0 − yᵀ(−e_i) = y_i = ∂obj/∂(row bound).
            duals.push(sign * y[i]);
            activity.push(self.x[n + i]);
            row_lb.push(model.rows[i].lb);
            row_ub.push(model.rows[i].ub);
            row_statuses.push(self.status[n + i].to_var_status());
        }

        let basis = Basis {
            cols: statuses.clone(),
            rows: row_statuses,
        };
        let ranging = RangingData {
            lu,
            col_start: self.col_start,
            col_rows: self.col_rows,
            col_vals: self.col_vals,
            basis: self.basis,
            x: self.x,
            lb: self.lb,
            ub: self.ub,
            pivot_tol: self.opts.pivot_tol,
            strict,
        };

        let mut stats = self.stats;
        stats.iterations = self.iterations;

        Solution {
            objective,
            x,
            reduced_costs: reduced,
            duals,
            row_activity: activity,
            var_status: statuses,
            iterations: self.iterations,
            stats,
            row_lb,
            row_ub,
            basis,
            ranging: std::sync::Arc::new(ranging),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LpModel, Objective, Relation};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "{a} vs {b}");
    }

    #[test]
    fn trivial_bound_only() {
        // min x s.t. x >= 5 (as a bound).
        let mut m = LpModel::new(Objective::Minimize);
        let x = m.add_var("x", 5.0, INF, 1.0);
        let sol = m.solve().unwrap();
        assert_close(sol.objective(), 5.0);
        assert_close(sol.value(x), 5.0);
        assert_close(sol.reduced_cost(x), 1.0);
    }

    #[test]
    fn simple_row_dual() {
        // min x s.t. x >= 5 (as a row): dual must be 1.
        let mut m = LpModel::new(Objective::Minimize);
        let x = m.add_var("x", f64::NEG_INFINITY, INF, 1.0);
        let c = m.add_constraint("r", &[(x, 1.0)], Relation::Ge, 5.0);
        let sol = m.solve().unwrap();
        assert_close(sol.objective(), 5.0);
        assert_close(sol.dual(c), 1.0);
        assert!(sol.is_tight(c));
    }

    #[test]
    fn maximize_with_capacity() {
        // max 3a + 5b s.t. a <= 4, 2b <= 12, 3a + 2b <= 18 (classic).
        let mut m = LpModel::new(Objective::Maximize);
        let a = m.add_var("a", 0.0, INF, 3.0);
        let b = m.add_var("b", 0.0, INF, 5.0);
        m.add_constraint("c1", &[(a, 1.0)], Relation::Le, 4.0);
        let c2 = m.add_constraint("c2", &[(b, 2.0)], Relation::Le, 12.0);
        let c3 = m.add_constraint("c3", &[(a, 3.0), (b, 2.0)], Relation::Le, 18.0);
        let sol = m.solve().unwrap();
        assert_close(sol.objective(), 36.0);
        assert_close(sol.value(a), 2.0);
        assert_close(sol.value(b), 6.0);
        // Known duals of the Dakota-style example: y2 = 1.5, y3 = 1.
        assert_close(sol.dual(c2), 1.5);
        assert_close(sol.dual(c3), 1.0);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + y = 10, x - y = 4 => x=7, y=3.
        let mut m = LpModel::new(Objective::Minimize);
        let x = m.add_var("x", 0.0, INF, 1.0);
        let y = m.add_var("y", 0.0, INF, 1.0);
        m.add_constraint("sum", &[(x, 1.0), (y, 1.0)], Relation::Eq, 10.0);
        m.add_constraint("diff", &[(x, 1.0), (y, -1.0)], Relation::Eq, 4.0);
        let sol = m.solve().unwrap();
        assert_close(sol.value(x), 7.0);
        assert_close(sol.value(y), 3.0);
        assert_close(sol.objective(), 10.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut m = LpModel::new(Objective::Minimize);
        let x = m.add_var("x", 0.0, 1.0, 1.0);
        m.add_constraint("hi", &[(x, 1.0)], Relation::Ge, 2.0);
        assert_eq!(m.solve().unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut m = LpModel::new(Objective::Minimize);
        let x = m.add_var("x", f64::NEG_INFINITY, 0.0, 1.0);
        m.add_constraint("r", &[(x, 1.0)], Relation::Le, 0.0);
        assert_eq!(m.solve().unwrap_err(), SolveError::Unbounded);
    }

    #[test]
    fn free_variables() {
        // min |shift| style: free var pinned by two inequalities.
        let mut m = LpModel::new(Objective::Minimize);
        let x = m.add_var("x", f64::NEG_INFINITY, INF, 1.0);
        m.add_constraint("lo", &[(x, 1.0)], Relation::Ge, -3.0);
        let sol = m.solve().unwrap();
        assert_close(sol.objective(), -3.0);
    }

    #[test]
    fn paper_running_example_min_t() {
        // Equation 6 + l >= 0.5: t = 1.615, reduced cost of l = 1 (Fig. 5).
        let mut m = LpModel::new(Objective::Minimize);
        let l = m.add_var("l", 0.5, INF, 0.0);
        let y1 = m.add_var("y1", f64::NEG_INFINITY, INF, 0.0);
        let t = m.add_var("t", f64::NEG_INFINITY, INF, 1.0);
        let c1 = m.add_constraint("c1", &[(y1, 1.0), (l, -1.0)], Relation::Ge, 0.115);
        let c2 = m.add_constraint("c2", &[(y1, 1.0)], Relation::Ge, 0.5);
        let c3 = m.add_constraint("c3", &[(t, 1.0)], Relation::Ge, 1.1);
        let c4 = m.add_constraint("c4", &[(t, 1.0), (y1, -1.0)], Relation::Ge, 1.0);
        let sol = m.solve().unwrap();
        assert_close(sol.objective(), 1.615);
        assert_close(sol.reduced_cost(l), 1.0);
        // Constraints (1) and (4) are tight: the critical path C0->S->R->C3.
        assert!(sol.is_tight(c1));
        assert!(sol.is_tight(c4));
        assert!(!sol.is_tight(c2));
        assert!(!sol.is_tight(c3));
        // Basis stays optimal down to l >= 0.385 (the critical latency).
        let (lo, _hi) = sol.lb_range(l);
        assert_close(lo, 0.385);
    }

    #[test]
    fn paper_running_example_max_l() {
        // Fig. 6: maximize l subject to t <= 2 => l = 0.885.
        let mut m = LpModel::new(Objective::Maximize);
        let l = m.add_var("l", 0.0, INF, 1.0);
        let y1 = m.add_var("y1", f64::NEG_INFINITY, INF, 0.0);
        let t = m.add_var("t", f64::NEG_INFINITY, 2.0, 0.0);
        m.add_constraint("c1", &[(y1, 1.0), (l, -1.0)], Relation::Ge, 0.115);
        m.add_constraint("c2", &[(y1, 1.0)], Relation::Ge, 0.5);
        m.add_constraint("c3", &[(t, 1.0)], Relation::Ge, 1.1);
        m.add_constraint("c4", &[(t, 1.0), (y1, -1.0)], Relation::Ge, 1.0);
        let sol = m.solve().unwrap();
        assert_close(sol.objective(), 0.885);
        assert_close(sol.value(l), 0.885);
    }

    #[test]
    fn running_example_below_critical_latency() {
        // With l >= 0.2 (< 0.385) the compute path dominates: t = 1.5 and
        // the latency sensitivity is 0.
        let mut m = LpModel::new(Objective::Minimize);
        let l = m.add_var("l", 0.2, INF, 0.0);
        let y1 = m.add_var("y1", f64::NEG_INFINITY, INF, 0.0);
        let t = m.add_var("t", f64::NEG_INFINITY, INF, 1.0);
        m.add_constraint("c1", &[(y1, 1.0), (l, -1.0)], Relation::Ge, 0.115);
        m.add_constraint("c2", &[(y1, 1.0)], Relation::Ge, 0.5);
        m.add_constraint("c3", &[(t, 1.0)], Relation::Ge, 1.1);
        m.add_constraint("c4", &[(t, 1.0), (y1, -1.0)], Relation::Ge, 1.0);
        let sol = m.solve().unwrap();
        assert_close(sol.objective(), 1.5);
        assert_close(sol.reduced_cost(l), 0.0);
    }

    #[test]
    fn range_row_is_respected() {
        // max x with 2 <= x <= 7 expressed as a range row.
        let mut m = LpModel::new(Objective::Maximize);
        let x = m.add_var("x", f64::NEG_INFINITY, INF, 1.0);
        m.add_range_constraint("rng", &[(x, 1.0)], 2.0, 7.0);
        let sol = m.solve().unwrap();
        assert_close(sol.objective(), 7.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Many redundant constraints through the same vertex.
        let mut m = LpModel::new(Objective::Minimize);
        let x = m.add_var("x", 0.0, INF, 1.0);
        let y = m.add_var("y", 0.0, INF, 1.0);
        for i in 0..20 {
            let w = 1.0 + (i as f64) * 0.0; // identical rows
            m.add_constraint(format!("r{i}"), &[(x, w), (y, w)], Relation::Ge, 4.0);
        }
        let sol = m.solve().unwrap();
        assert_close(sol.objective(), 4.0);
    }

    #[test]
    fn iterations_are_counted() {
        let mut m = LpModel::new(Objective::Maximize);
        let a = m.add_var("a", 0.0, INF, 3.0);
        let b = m.add_var("b", 0.0, INF, 5.0);
        m.add_constraint("c1", &[(a, 1.0)], Relation::Le, 4.0);
        m.add_constraint("c2", &[(b, 2.0)], Relation::Le, 12.0);
        m.add_constraint("c3", &[(a, 3.0), (b, 2.0)], Relation::Le, 18.0);
        let sol = m.solve().unwrap();
        assert!(sol.iterations() > 0);
        // The stats agree with the headline counter and saw real work.
        assert_eq!(sol.stats().iterations, sol.iterations());
        assert!(sol.stats().ftran_calls > 0);
        assert_eq!(sol.stats().rows, 3);
    }

    #[test]
    fn dense_and_sparse_are_bit_identical() {
        let mut m = LpModel::new(Objective::Maximize);
        let a = m.add_var("a", 0.0, INF, 3.0);
        let b = m.add_var("b", 0.0, INF, 5.0);
        m.add_constraint("c1", &[(a, 1.0)], Relation::Le, 4.0);
        m.add_constraint("c2", &[(b, 2.0)], Relation::Le, 12.0);
        m.add_constraint("c3", &[(a, 3.0), (b, 2.0)], Relation::Le, 18.0);
        let opts = SimplexOptions::default();
        let d = solve_dense(&m, &opts, None).unwrap();
        let s = solve_sparse(&m, &opts, None).unwrap();
        assert_eq!(d.objective().to_bits(), s.objective().to_bits());
        for v in [a, b] {
            assert_eq!(d.value(v).to_bits(), s.value(v).to_bits());
            assert_eq!(d.reduced_cost(v).to_bits(), s.reduced_cost(v).to_bits());
        }
        assert_eq!(d.basis(), s.basis());
    }

    #[test]
    fn warm_start_reaches_same_optimum() {
        // min t with l >= L, warm-started from a neighbouring L.
        let build = |l_lb: f64| {
            let mut m = LpModel::new(Objective::Minimize);
            let l = m.add_var("l", l_lb, INF, 0.0);
            let y1 = m.add_var("y1", f64::NEG_INFINITY, INF, 0.0);
            let t = m.add_var("t", f64::NEG_INFINITY, INF, 1.0);
            m.add_constraint("c1", &[(y1, 1.0), (l, -1.0)], Relation::Ge, 0.115);
            m.add_constraint("c2", &[(y1, 1.0)], Relation::Ge, 0.5);
            m.add_constraint("c3", &[(t, 1.0)], Relation::Ge, 1.1);
            m.add_constraint("c4", &[(t, 1.0), (y1, -1.0)], Relation::Ge, 1.0);
            m
        };
        let opts = SimplexOptions::default();
        let first = solve_sparse(&build(0.5), &opts, None).unwrap();
        // Warm-started re-solve at a nearby bound must agree bitwise with
        // a cold solve (same final basis, canonical extraction).
        let m2 = build(0.6);
        let warm = solve_sparse(&m2, &opts, Some(first.basis())).unwrap();
        let cold = solve_sparse(&m2, &opts, None).unwrap();
        assert_eq!(warm.objective().to_bits(), cold.objective().to_bits());
        assert_eq!(warm.basis(), cold.basis());
        // Inside the stability window the warm start needs no pivots.
        assert_eq!(warm.iterations(), 1, "only the optimality pricing pass");
    }

    #[test]
    fn reextract_matches_full_solve_inside_stability_window() {
        let build = |l_lb: f64| {
            let mut m = LpModel::new(Objective::Minimize);
            let l = m.add_var("l", l_lb, INF, 0.0);
            let y1 = m.add_var("y1", f64::NEG_INFINITY, INF, 0.0);
            let t = m.add_var("t", f64::NEG_INFINITY, INF, 1.0);
            m.add_constraint("c1", &[(y1, 1.0), (l, -1.0)], Relation::Ge, 0.115);
            m.add_constraint("c2", &[(y1, 1.0)], Relation::Ge, 0.5);
            m.add_constraint("c3", &[(t, 1.0)], Relation::Ge, 1.1);
            m.add_constraint("c4", &[(t, 1.0), (y1, -1.0)], Relation::Ge, 1.0);
            m
        };
        let opts = SimplexOptions::default();
        let first = solve_sparse(&build(0.5), &opts, None).unwrap();
        let m2 = build(0.7);
        let re = reextract(&m2, &opts, first.basis()).unwrap();
        let cold = solve_sparse(&m2, &opts, None).unwrap();
        assert_eq!(re.objective().to_bits(), cold.objective().to_bits());
        assert_eq!(re.iterations(), 0);
    }

    #[test]
    fn mismatched_warm_basis_falls_back_to_cold() {
        let mut small = LpModel::new(Objective::Minimize);
        let x = small.add_var("x", 0.0, 10.0, 1.0);
        small.add_constraint("r", &[(x, 1.0)], Relation::Ge, 2.0);
        let sol = small.solve().unwrap();

        let mut big = LpModel::new(Objective::Minimize);
        let a = big.add_var("a", 0.0, 10.0, 1.0);
        let b = big.add_var("b", 0.0, 10.0, 1.0);
        big.add_constraint("r1", &[(a, 1.0), (b, 1.0)], Relation::Ge, 3.0);
        big.add_constraint("r2", &[(a, 1.0)], Relation::Ge, 1.0);
        let warm = solve_sparse(&big, &SimplexOptions::default(), Some(sol.basis())).unwrap();
        assert_close(warm.objective(), 3.0);
    }

    /// A model that needs at least a few pivots, for exercising budgets.
    fn pivoty_model() -> LpModel {
        let mut m = LpModel::new(Objective::Maximize);
        let a = m.add_var("a", 0.0, INF, 3.0);
        let b = m.add_var("b", 0.0, INF, 5.0);
        m.add_constraint("c1", &[(a, 1.0)], Relation::Le, 4.0);
        m.add_constraint("c2", &[(b, 2.0)], Relation::Le, 12.0);
        m.add_constraint("c3", &[(a, 3.0), (b, 2.0)], Relation::Le, 18.0);
        m
    }

    #[test]
    fn iteration_budget_reports_typed_error() {
        let opts = SimplexOptions {
            max_iterations: 1,
            ..Default::default()
        };
        assert_eq!(
            solve_sparse(&pivoty_model(), &opts, None).unwrap_err(),
            SolveError::IterationLimit
        );
    }

    #[test]
    fn generous_time_budget_does_not_change_the_answer() {
        // time_limit_ms measures from solve start, so forcing a trip in a
        // unit test would be timing-flaky; assert the plumbing instead — a
        // generous budget is bit-identical to no budget.
        let generous = SimplexOptions {
            time_limit_ms: 60_000,
            ..Default::default()
        };
        let clean = solve_sparse(&pivoty_model(), &SimplexOptions::default(), None).unwrap();
        let timed = solve_sparse(&pivoty_model(), &generous, None).unwrap();
        assert_eq!(clean.objective().to_bits(), timed.objective().to_bits());
    }

    #[test]
    fn stall_budget_ignores_productive_iterations() {
        // The classic example pivots productively each step; a stall
        // budget of 1 (one degenerate iteration allowed... none happen)
        // must not fire.
        let opts = SimplexOptions {
            stall_iters: 1,
            ..Default::default()
        };
        let sol = solve_sparse(&pivoty_model(), &opts, None).unwrap();
        assert_close(sol.objective(), 36.0);
    }

    #[test]
    fn drift_tripwire_fires_on_absurd_threshold() {
        // Force a refactor+resync every pivot with a drift limit below
        // machine noise: any recorded drift > 0 aborts with distress.
        let opts = SimplexOptions {
            refactor_every: 1,
            drift_limit: 1e-300,
            ..Default::default()
        };
        match solve_sparse(&pivoty_model(), &opts, None) {
            Err(SolveError::Distress(Distress::ResyncDrift)) | Ok(_) => {}
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn budgets_off_by_default() {
        let opts = SimplexOptions::default();
        assert_eq!(opts.time_limit_ms, 0);
        assert_eq!(opts.stall_iters, 0);
        assert_eq!(opts.bland_streak_limit, 0);
        assert_eq!(opts.singular_limit, 0);
        assert!(opts.drift_limit > 0.0, "drift tripwire is on by default");
    }
}

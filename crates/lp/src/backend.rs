//! The unified solver-backend layer.
//!
//! [`SolverBackend`] is the interface the analysis layers (`llamp-core`,
//! `llamp-engine`) program against: solve a model, re-solve it cheaply
//! after the incremental edits LLAMP performs (bound tightenings, the
//! tolerance objective flip), and read duals / reduced costs / ranging
//! off the returned [`Solution`]. Four implementations:
//!
//! * [`DenseSimplex`] — the dense-inverse simplex. The original path,
//!   `O(m²)` per iteration; kept behind the same interface as the
//!   cross-validation reference.
//! * [`SparseSimplex`] — sparse LU + eta-file simplex. The at-scale
//!   default.
//! * [`Parametric`] — sparse simplex plus the parametric shortcut of
//!   Algorithm 2: it remembers the previous optimum's basis-stability
//!   window, and when a re-solve changed nothing but one variable's lower
//!   bound *within* that window (the per-`L` step of a latency sweep) it
//!   skips the simplex entirely — one factorisation, zero pivots.
//! * [`DualSimplex`] — sparse simplex whose `resolve` runs the **dual**
//!   algorithm ([`crate::dual`]): a sweep step that only moved bounds
//!   leaves the previous basis dual feasible, so the re-solve pivots out
//!   just the primal bound violations instead of re-proving feasibility
//!   from scratch. Any other edit falls back to the warm primal path.
//!
//! All four warm-start `resolve` from the previous optimal basis, and all
//! four report solutions through the same canonical extraction, so
//! backends that land on the same final basis return bit-identical
//! numbers (the engine's cross-backend byte-identity contract).
//!
//! Pick a backend by name with [`by_name`] (`"dense"`, `"sparse"`,
//! `"parametric"`, `"dual"`); campaign specs and the `llamp` CLI surface
//! the same names as `lp-dense` / `lp-sparse` / `lp-parametric` /
//! `lp-dual`.

use crate::dual::solve_dual_reusing;
use crate::error::SolveError;
use crate::model::{LpModel, Objective, VarId};
use crate::simplex::{
    reextract_reusing, solve_dense, solve_sparse, solve_sparse_reusing, RangingData, SimplexOptions,
};
use crate::solution::{Basis, Solution, SolveStats};
use std::sync::Arc;

/// A solver that can answer LLAMP's LP queries, re-using work across the
/// incremental model edits a latency sweep performs.
pub trait SolverBackend: std::fmt::Debug + Send {
    /// Spec-file name of this backend (`dense` / `sparse` / `parametric`).
    fn name(&self) -> &'static str;

    /// Cold solve: ignore (and replace) any retained warm state.
    fn solve(&mut self, model: &LpModel) -> Result<Solution, SolveError>;

    /// Re-solve after incremental model edits, warm-starting from the
    /// previous optimal basis when one is retained. Falls back to a cold
    /// solve when no state fits the model.
    fn resolve(&mut self, model: &LpModel) -> Result<Solution, SolveError>;

    /// The basis the next `resolve` would warm-start from, if any.
    fn warm_basis(&self) -> Option<&Basis>;

    /// Replace the warm state with an explicit basis. Useful to re-seed
    /// several related solves from one reference optimum instead of
    /// chaining them — chained warm paths may settle on different
    /// (degenerate-equivalent) bases per factorisation, while a shared
    /// seed keeps backends bit-identical.
    fn seed(&mut self, basis: &Basis);

    /// Drop all warm state (the next `resolve` starts cold).
    fn reset(&mut self);

    /// Cumulative solver-effort counters across every solve this backend
    /// has run (not cleared by [`SolverBackend::reset`] — they are
    /// observability, not solver state).
    fn stats(&self) -> SolveStats;
}

/// The backend names [`by_name`] accepts, in canonical order.
pub const BACKEND_NAMES: &[&str] = &["dense", "sparse", "parametric", "dual"];

/// Construct a backend (with default options) from its spec name.
pub fn by_name(name: &str) -> Option<Box<dyn SolverBackend>> {
    match name.to_ascii_lowercase().as_str() {
        "dense" => Some(Box::new(DenseSimplex::default())),
        "sparse" => Some(Box::new(SparseSimplex::default())),
        "parametric" => Some(Box::new(Parametric::default())),
        "dual" => Some(Box::new(DualSimplex::default())),
        _ => None,
    }
}

/// Dense-inverse simplex backend (cross-validation reference).
#[derive(Debug, Default)]
pub struct DenseSimplex {
    opts: SimplexOptions,
    warm: Option<Basis>,
    stats: SolveStats,
}

impl DenseSimplex {
    /// Backend with explicit simplex options.
    pub fn with_options(opts: SimplexOptions) -> Self {
        Self {
            opts,
            warm: None,
            stats: SolveStats::default(),
        }
    }
}

impl SolverBackend for DenseSimplex {
    fn name(&self) -> &'static str {
        "dense"
    }

    fn solve(&mut self, model: &LpModel) -> Result<Solution, SolveError> {
        let sol = solve_dense(model, &self.opts, None)?;
        self.stats.merge(sol.stats());
        self.warm = Some(sol.basis().clone());
        Ok(sol)
    }

    fn resolve(&mut self, model: &LpModel) -> Result<Solution, SolveError> {
        let sol = solve_dense(model, &self.opts, self.warm.as_ref())?;
        self.stats.merge(sol.stats());
        self.warm = Some(sol.basis().clone());
        Ok(sol)
    }

    fn warm_basis(&self) -> Option<&Basis> {
        self.warm.as_ref()
    }

    fn seed(&mut self, basis: &Basis) {
        self.warm = Some(basis.clone());
    }

    fn reset(&mut self) {
        self.warm = None;
    }

    fn stats(&self) -> SolveStats {
        self.stats
    }
}

/// Sparse LU / eta-file simplex backend (the at-scale default).
#[derive(Debug, Default)]
pub struct SparseSimplex {
    opts: SimplexOptions,
    warm: Option<Basis>,
    /// Last solution's ranging data — the retained LU a warm start whose
    /// basis and matrix bits match may adopt instead of refactorising.
    /// Deliberately survives [`SolverBackend::reset`]: adoption keys on
    /// bit-identity, so a stale entry can only miss, never corrupt.
    reuse: Option<Arc<RangingData>>,
    stats: SolveStats,
}

impl SparseSimplex {
    /// Backend with explicit simplex options.
    pub fn with_options(opts: SimplexOptions) -> Self {
        Self {
            opts,
            warm: None,
            reuse: None,
            stats: SolveStats::default(),
        }
    }
}

impl SolverBackend for SparseSimplex {
    fn name(&self) -> &'static str {
        "sparse"
    }

    fn solve(&mut self, model: &LpModel) -> Result<Solution, SolveError> {
        let sol = solve_sparse(model, &self.opts, None)?;
        self.stats.merge(sol.stats());
        self.warm = Some(sol.basis().clone());
        self.reuse = Some(sol.ranging.clone());
        Ok(sol)
    }

    fn resolve(&mut self, model: &LpModel) -> Result<Solution, SolveError> {
        let sol =
            solve_sparse_reusing(model, &self.opts, self.warm.as_ref(), self.reuse.as_deref())?;
        self.stats.merge(sol.stats());
        self.warm = Some(sol.basis().clone());
        self.reuse = Some(sol.ranging.clone());
        Ok(sol)
    }

    fn warm_basis(&self) -> Option<&Basis> {
        self.warm.as_ref()
    }

    fn seed(&mut self, basis: &Basis) {
        self.warm = Some(basis.clone());
    }

    fn reset(&mut self) {
        self.warm = None;
    }

    fn stats(&self) -> SolveStats {
        self.stats
    }
}

/// Sparse simplex with dual-simplex re-solves: `resolve` hands the warm
/// basis to [`crate::dual::solve_dual`], which repairs pure bound moves
/// with dual pivots (and falls back to the shared warm primal driver for
/// any other edit, bit-identically to [`SparseSimplex`]). `solve` is the
/// plain cold sparse path, so cold results are bit-identical across the
/// sparse-family backends by construction.
#[derive(Debug, Default)]
pub struct DualSimplex {
    opts: SimplexOptions,
    warm: Option<Basis>,
    /// Retained LU for bit-identical warm starts (see [`SparseSimplex`]).
    reuse: Option<Arc<RangingData>>,
    stats: SolveStats,
}

impl DualSimplex {
    /// Backend with explicit simplex options.
    pub fn with_options(opts: SimplexOptions) -> Self {
        Self {
            opts,
            warm: None,
            reuse: None,
            stats: SolveStats::default(),
        }
    }
}

impl SolverBackend for DualSimplex {
    fn name(&self) -> &'static str {
        "dual"
    }

    fn solve(&mut self, model: &LpModel) -> Result<Solution, SolveError> {
        let sol = solve_sparse(model, &self.opts, None)?;
        self.stats.merge(sol.stats());
        self.warm = Some(sol.basis().clone());
        self.reuse = Some(sol.ranging.clone());
        Ok(sol)
    }

    fn resolve(&mut self, model: &LpModel) -> Result<Solution, SolveError> {
        let sol = solve_dual_reusing(model, &self.opts, self.warm.as_ref(), self.reuse.as_deref())?;
        self.stats.merge(sol.stats());
        self.warm = Some(sol.basis().clone());
        self.reuse = Some(sol.ranging.clone());
        Ok(sol)
    }

    fn warm_basis(&self) -> Option<&Basis> {
        self.warm.as_ref()
    }

    fn seed(&mut self, basis: &Basis) {
        self.warm = Some(basis.clone());
    }

    fn reset(&mut self) {
        self.warm = None;
    }

    fn stats(&self) -> SolveStats {
        self.stats
    }
}

/// Snapshot of the mutable parts of a model, for detecting what a
/// `resolve` actually changed.
#[derive(Debug, Clone, PartialEq)]
struct ModelStamp {
    sense: Objective,
    /// `(lb, ub, obj)` per structural column.
    cols: Vec<(f64, f64, f64)>,
    rows: usize,
}

impl ModelStamp {
    fn of(model: &LpModel) -> Self {
        Self {
            sense: model.sense(),
            cols: (0..model.num_vars() as u32)
                .map(|j| {
                    let v = VarId(j);
                    (model.var_lb(v), model.var_ub(v), model.var_obj(v))
                })
                .collect(),
            rows: model.num_constraints(),
        }
    }

    /// If `other` differs from `self` **only in lower bounds** (same
    /// sense, objectives, upper bounds, row count), return the changed
    /// columns with their bound deltas — the joint move direction. `None`
    /// when anything else changed or nothing changed at all. One entry is
    /// the classic per-`L` sweep step; several entries are a
    /// multi-parameter step (`L`, `G` and `o` moving together).
    fn lb_changes(&self, other: &Self) -> Option<Vec<(VarId, f64)>> {
        if self.sense != other.sense
            || self.rows != other.rows
            || self.cols.len() != other.cols.len()
        {
            return None;
        }
        let mut changed = Vec::new();
        for (j, (a, b)) in self.cols.iter().zip(&other.cols).enumerate() {
            if a.1.to_bits() != b.1.to_bits() || a.2.to_bits() != b.2.to_bits() {
                return None;
            }
            if a.0.to_bits() != b.0.to_bits() {
                if !a.0.is_finite() || !b.0.is_finite() {
                    return None;
                }
                changed.push((VarId(j as u32), b.0 - a.0));
            }
        }
        if changed.is_empty() {
            None
        } else {
            Some(changed)
        }
    }
}

#[derive(Debug)]
struct ParametricState {
    stamp: ModelStamp,
    solution: Solution,
}

/// Sparse simplex with the Algorithm-2 parametric shortcut: a `resolve`
/// that only moved one lower bound within the previous optimum's
/// basis-stability window re-extracts the solution from the retained
/// basis without a single pivot.
#[derive(Debug, Default)]
pub struct Parametric {
    opts: SimplexOptions,
    state: Option<ParametricState>,
    /// Explicitly seeded warm basis, used when no full state is retained.
    seeded: Option<Basis>,
    /// Retained LU for bit-identical warm starts (see [`SparseSimplex`]).
    reuse: Option<Arc<RangingData>>,
    stats: SolveStats,
}

impl Parametric {
    /// Backend with explicit simplex options.
    pub fn with_options(opts: SimplexOptions) -> Self {
        Self {
            opts,
            state: None,
            seeded: None,
            reuse: None,
            stats: SolveStats::default(),
        }
    }

    fn remember(&mut self, model: &LpModel, sol: &Solution) {
        self.reuse = Some(sol.ranging.clone());
        self.state = Some(ParametricState {
            stamp: ModelStamp::of(model),
            solution: sol.clone(),
        });
    }
}

impl SolverBackend for Parametric {
    fn name(&self) -> &'static str {
        "parametric"
    }

    fn solve(&mut self, model: &LpModel) -> Result<Solution, SolveError> {
        let sol = solve_sparse(model, &self.opts, None)?;
        self.stats.merge(sol.stats());
        self.remember(model, &sol);
        Ok(sol)
    }

    fn resolve(&mut self, model: &LpModel) -> Result<Solution, SolveError> {
        // Parametric shortcut: lower bounds moved inside the previous
        // basis-stability window ⇒ the basis is still optimal, so a
        // pivot-free re-extraction answers exactly. The window comes from
        // *directional* ranging along the joint move (unit step = the
        // full move), so the shortcut fires for multi-parameter steps —
        // an `L`/`G`/`o` tuple moving together — exactly as it does for
        // the classic single-`L` sweep step.
        if let Some(state) = &self.state {
            let stamp = ModelStamp::of(model);
            if let Some(moves) = state.stamp.lb_changes(&stamp) {
                let (lo, hi) = state.solution.lb_step_range(&moves);
                if lo <= 1.0 && 1.0 <= hi {
                    if let Ok(sol) = reextract_reusing(
                        model,
                        &self.opts,
                        state.solution.basis(),
                        self.reuse.as_deref(),
                    ) {
                        llamp_obs::counter("lp.parametric.shortcut", 1);
                        self.stats.merge(sol.stats());
                        self.remember(model, &sol);
                        return Ok(sol);
                    }
                }
            }
        }
        // Anything else: warm-started sparse solve from the last basis
        // (or an explicitly seeded one).
        let warm = self
            .state
            .as_ref()
            .map(|s| s.solution.basis().clone())
            .or_else(|| self.seeded.clone());
        let sol = solve_sparse_reusing(model, &self.opts, warm.as_ref(), self.reuse.as_deref())?;
        self.stats.merge(sol.stats());
        self.remember(model, &sol);
        Ok(sol)
    }

    fn warm_basis(&self) -> Option<&Basis> {
        self.state
            .as_ref()
            .map(|s| s.solution.basis())
            .or(self.seeded.as_ref())
    }

    fn seed(&mut self, basis: &Basis) {
        // Re-seeding with the basis the retained state already sits on
        // keeps the full state, so the basis-stability shortcut can still
        // answer the next in-window re-solve without iterating. This is
        // sound for callers seeding every query from one shared anchor
        // (the engine's determinism pattern): a shortcut hit is verified
        // by `reextract` to be bit-identical to the warm solve the seed
        // would otherwise trigger.
        if self
            .state
            .as_ref()
            .is_some_and(|s| s.solution.basis() == basis)
        {
            return;
        }
        self.state = None;
        self.seeded = Some(basis.clone());
    }

    fn reset(&mut self) {
        self.state = None;
        self.seeded = None;
    }

    fn stats(&self) -> SolveStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LpModel, Objective, Relation};

    fn running_example(l_lb: f64) -> (LpModel, VarId) {
        let mut m = LpModel::new(Objective::Minimize);
        let l = m.add_var("l", l_lb, f64::INFINITY, 0.0);
        let y1 = m.add_var("y1", f64::NEG_INFINITY, f64::INFINITY, 0.0);
        let t = m.add_var("t", f64::NEG_INFINITY, f64::INFINITY, 1.0);
        m.add_constraint("c1", &[(y1, 1.0), (l, -1.0)], Relation::Ge, 0.115);
        m.add_constraint("c2", &[(y1, 1.0)], Relation::Ge, 0.5);
        m.add_constraint("c3", &[(t, 1.0)], Relation::Ge, 1.1);
        m.add_constraint("c4", &[(t, 1.0), (y1, -1.0)], Relation::Ge, 1.0);
        (m, l)
    }

    #[test]
    fn registry_knows_all_backends() {
        for name in BACKEND_NAMES {
            let b = by_name(name).unwrap();
            assert_eq!(b.name(), *name);
        }
        assert!(by_name("gurobi").is_none());
    }

    #[test]
    fn all_backends_agree_on_running_example() {
        for name in BACKEND_NAMES {
            let mut b = by_name(name).unwrap();
            let (m, l) = running_example(0.5);
            let sol = b.solve(&m).unwrap();
            assert!((sol.objective() - 1.615).abs() < 1e-9, "{name}");
            assert!((sol.reduced_cost(l) - 1.0).abs() < 1e-9, "{name}");
        }
    }

    #[test]
    fn parametric_shortcut_skips_pivots() {
        let mut b = Parametric::default();
        let (m, _) = running_example(0.5);
        let first = b.solve(&m).unwrap();
        assert!(first.iterations() > 0);
        // 0.45 is inside the stability window [0.385, ∞) of the l ≥ 0.5
        // optimum: the shortcut must answer with zero iterations.
        let (m2, l2) = running_example(0.45);
        let second = b.resolve(&m2).unwrap();
        assert_eq!(second.iterations(), 0);
        assert!((second.objective() - 1.565).abs() < 1e-9);
        assert!((second.reduced_cost(l2) - 1.0).abs() < 1e-9);
        // 0.2 is below the 0.385 breakpoint: a real (warm) solve runs and
        // lands on the compute-dominated optimum.
        let (m3, l3) = running_example(0.2);
        let third = b.resolve(&m3).unwrap();
        assert!((third.objective() - 1.5).abs() < 1e-9);
        assert!(third.reduced_cost(l3).abs() < 1e-9);
    }

    #[test]
    fn parametric_matches_cold_solves_bitwise_across_a_sweep() {
        let mut warm = Parametric::default();
        for i in 0..20 {
            let l = 0.1 + 0.03 * i as f64;
            let (m, lv) = running_example(l);
            let a = warm.resolve(&m).unwrap();
            let b = SparseSimplex::default().solve(&m).unwrap();
            assert_eq!(a.objective().to_bits(), b.objective().to_bits(), "L={l}");
            assert_eq!(
                a.reduced_cost(lv).to_bits(),
                b.reduced_cost(lv).to_bits(),
                "L={l}"
            );
        }
    }

    #[test]
    fn anchor_seeding_keeps_the_shortcut_alive() {
        // The engine seeds every query from one anchor basis. When the
        // anchor is the backend's own retained optimum, the shortcut must
        // still fire (zero iterations) and stay bit-identical to the
        // warm sparse solve the seed would otherwise trigger.
        let mut p = Parametric::default();
        let (m0, _) = running_example(0.5);
        let anchor_sol = p.solve(&m0).unwrap();
        let anchor = anchor_sol.basis().clone();
        for l in [0.45, 0.48, 0.5] {
            let (m, lv) = running_example(l);
            p.seed(&anchor);
            let a = p.resolve(&m).unwrap();
            assert_eq!(a.iterations(), 0, "shortcut must fire at L={l}");
            let mut s = SparseSimplex::default();
            s.seed(&anchor);
            let b = s.resolve(&m).unwrap();
            assert_eq!(a.objective().to_bits(), b.objective().to_bits(), "L={l}");
            assert_eq!(
                a.reduced_cost(lv).to_bits(),
                b.reduced_cost(lv).to_bits(),
                "L={l}"
            );
        }
    }

    /// A two-parameter miniature: `t ≥ c + 1·l + 2·g` beside a constant
    /// floor, so moving `l` and `g` *together* is the multi-parameter
    /// sweep step the directional shortcut must answer pivot-free.
    fn two_param_example(l_lb: f64, g_lb: f64) -> (LpModel, VarId, VarId) {
        let mut m = LpModel::new(Objective::Minimize);
        let l = m.add_var("l", l_lb, f64::INFINITY, 0.0);
        let g = m.add_var("g", g_lb, f64::INFINITY, 0.0);
        let t = m.add_var("t", f64::NEG_INFINITY, f64::INFINITY, 1.0);
        m.add_constraint("wire", &[(t, 1.0), (l, -1.0), (g, -2.0)], Relation::Ge, 0.4);
        m.add_constraint("comp", &[(t, 1.0)], Relation::Ge, 1.0);
        (m, l, g)
    }

    #[test]
    fn joint_lb_move_fires_shortcut() {
        let mut p = Parametric::default();
        let (m, l, g) = two_param_example(0.5, 0.2);
        let first = p.solve(&m).unwrap();
        // Wire path active: T = 0.4 + 0.5 + 0.4 = 1.3, λ_l = 1, λ_g = 2.
        assert!((first.objective() - 1.3).abs() < 1e-9);
        assert!((first.reduced_cost(l) - 1.0).abs() < 1e-9);
        assert!((first.reduced_cost(g) - 2.0).abs() < 1e-9);
        // Both bounds move, staying on the wire-dominated facet: the
        // directional shortcut must answer with zero iterations and match
        // a cold solve bitwise.
        let (m2, l2, g2) = two_param_example(0.45, 0.25);
        let sol = p.resolve(&m2).unwrap();
        assert_eq!(sol.iterations(), 0, "joint in-window move must not pivot");
        let cold = SparseSimplex::default().solve(&m2).unwrap();
        assert_eq!(sol.objective().to_bits(), cold.objective().to_bits());
        assert_eq!(
            sol.reduced_cost(l2).to_bits(),
            cold.reduced_cost(l2).to_bits()
        );
        assert_eq!(
            sol.reduced_cost(g2).to_bits(),
            cold.reduced_cost(g2).to_bits()
        );
        // A joint move crossing the facet change (wire cost below the
        // 1.0 compute floor) leaves the window: the warm path answers and
        // the sensitivities drop to zero.
        let (m3, l3, g3) = two_param_example(0.1, 0.05);
        let sol3 = p.resolve(&m3).unwrap();
        assert!((sol3.objective() - 1.0).abs() < 1e-9);
        assert!(sol3.reduced_cost(l3).abs() < 1e-9);
        assert!(sol3.reduced_cost(g3).abs() < 1e-9);
    }

    #[test]
    fn directional_range_matches_componentwise_for_unit_moves() {
        let mut s = SparseSimplex::default();
        let (m, l, g) = two_param_example(0.5, 0.2);
        let sol = s.solve(&m).unwrap();
        // dir = e_l reproduces the classic per-column window.
        let (lo, hi) = sol.lb_step_range(&[(l, 1.0)]);
        let (vlo, vhi) = sol.lb_range(l);
        assert!((0.5 + lo - vlo).abs() < 1e-12 || (lo.is_infinite() && vlo.is_infinite()));
        assert!((0.5 + hi - vhi).abs() < 1e-12 || (hi.is_infinite() && vhi.is_infinite()));
        // The joint direction (−0.1, +0.05) keeps the wire facet active
        // while 1·δl + 2·δg = 0: the window must contain far more than a
        // unit step in that objective-neutral direction.
        let (lo2, hi2) = sol.lb_step_range(&[(l, -0.1), (g, 0.05)]);
        assert!(lo2 <= 0.0 && hi2 >= 1.0, "window [{lo2}, {hi2}]");
    }

    #[test]
    fn reset_forgets_state() {
        let mut b = Parametric::default();
        let (m, _) = running_example(0.5);
        b.solve(&m).unwrap();
        b.reset();
        let (m2, _) = running_example(0.45);
        let sol = b.resolve(&m2).unwrap();
        // Cold again: pivots happen.
        assert!(sol.iterations() > 0);
    }
}

//! Bounded-variable **dual simplex**, sharing the primal's `Core`
//! (basis factorisation, CSR pivot-row scatter, `IndexedVec`
//! workspaces, canonical extraction) so both algorithms report
//! bit-identical solutions from the same final basis.
//!
//! The dual simplex is the natural re-solve engine for LLAMP's sweeps:
//! a bound move (Algorithm 2's `l ≥ L` step, or a multi-parameter grid
//! step) leaves the previous optimal basis **dual feasible** — the
//! reduced costs do not depend on bounds — while possibly knocking a few
//! basic variables outside their (shifted) boxes. Instead of re-proving
//! feasibility with a primal phase 1, the dual algorithm drives exactly
//! those violations out:
//!
//! * **Leaving row.** The basic variable with the largest (magnitude-
//!   scaled) bound violation leaves at the bound it violates; ties break
//!   toward the lowest basis position. No violation ⇒ the basis is primal
//!   *and* dual feasible ⇒ optimal.
//! * **Pivot row.** One sparse BTRAN of `eᵣ` plus the CSR scatter
//!   produces the pivot row `α = Aᵀ B⁻ᵀ eᵣ` — the same hypersparse path
//!   the primal uses for incremental pricing.
//! * **Dual ratio test.** Among sign-eligible nonbasic columns (those
//!   whose movement pushes the leaving variable toward its bound), the
//!   entering column minimises `|d_j| / |α_j|`; near-ties (relative
//!   epsilon) keep the largest `|α_j|`, then the lowest column index —
//!   mirroring the primal's deterministic tie-breaks. The reduced costs
//!   update as `d ← d − θ_d·α` with `θ_d = d_q / α_q`, preserving dual
//!   feasibility by the minimality of the ratio.
//! * **No eligible column** while a violation remains ⇒ the primal is
//!   infeasible (the dual ray certifies it).
//!
//! After the dual loop reaches primal feasibility the caller runs one
//! primal phase-2 confirmation (a pricing pass over freshly
//! resynchronised reduced costs), so a certified optimum never rests on
//! incrementally updated numbers alone.

use crate::error::SolveError;
use crate::factor::{BasisFactor, ColsView, SparseLu};
use crate::model::LpModel;
use crate::simplex::{
    run_primal, traced_solve, viol_tol, Core, NbStatus, PhaseOutcome, RangingData, SimplexOptions,
};
use crate::solution::{Basis, Solution};

/// Relative epsilon under which two dual-ratio pivots count as tied
/// (ties keep the largest pivot magnitude, then the lowest column
/// index) — the same width the primal uses, for the same reason: tied
/// candidates must resolve identically across factorisation backends.
const DUAL_RATIO_TIE_REL: f64 = 1e-6;

/// Re-solve `model` from `warm` with the dual simplex (sparse LU
/// factorisation). When the warm basis is dual feasible but primal
/// infeasible — the shape every pure bound move produces — the dual
/// algorithm repairs it directly; any other shape (cold basis, changed
/// objective, primal-feasible start) falls through to the shared primal
/// driver, so the result is bit-identical to what `solve_sparse` would
/// report from the same start.
pub fn solve_dual(
    model: &LpModel,
    opts: &SimplexOptions,
    warm: Option<&Basis>,
) -> Result<Solution, SolveError> {
    solve_dual_reusing(model, opts, warm, None)
}

/// [`solve_dual`] with the optional LU-adoption shortcut of
/// `solve_sparse_reusing`: a retained [`RangingData`] whose
/// basis and matrix bits match the warm start is installed without
/// refactorising.
pub fn solve_dual_reusing(
    model: &LpModel,
    opts: &SimplexOptions,
    warm: Option<&Basis>,
    reuse: Option<&RangingData>,
) -> Result<Solution, SolveError> {
    traced_solve("dual", model, warm, || {
        solve_dual_inner(model, opts, warm, reuse)
    })
}

fn solve_dual_inner(
    model: &LpModel,
    opts: &SimplexOptions,
    warm: Option<&Basis>,
    reuse: Option<&RangingData>,
) -> Result<Solution, SolveError> {
    let mut core: Core<SparseLu> = Core::build_reusing(model, opts.clone(), warm, reuse);
    core.arm_deadline();
    let max_iters = core.iteration_cap();

    if !core.warm_installed || core.is_primal_feasible(1.0) || !is_dual_feasible(&mut core) {
        // Nothing for the dual algorithm to do (or no trustworthy start):
        // the shared primal driver handles it, bit-identically to the
        // primal backends.
        return run_primal(core, model);
    }

    match dual_iterate(&mut core, max_iters) {
        PhaseOutcome::Done => {}
        PhaseOutcome::Unbounded => return Err(SolveError::Infeasible),
        PhaseOutcome::Abort(e) => return Err(e),
    }
    // Primal confirmation pass: resynchronised pricing certifies
    // optimality (and mops up any tolerance-level dual drift).
    run_primal(core, model)
}

/// Whether the current basis is dual feasible under the phase-2
/// objective: every nonbasic reduced cost points away from its bound
/// (within the optimality tolerance). Recomputes `d` from scratch; the
/// dual loop maintains it incrementally from here.
fn is_dual_feasible<F: BasisFactor>(core: &mut Core<F>) -> bool {
    core.resync_d(false, false);
    let opt = core.opts.opt_tol;
    (0..core.n_total).all(|j| {
        let dj = core.d[j];
        match core.status[j] {
            NbStatus::Basic => true,
            // A fixed column (lb == ub) can absorb either sign.
            NbStatus::Lower => dj >= -opt || core.lb[j] == core.ub[j],
            NbStatus::Upper => dj <= opt || core.lb[j] == core.ub[j],
            NbStatus::FreeZero => dj.abs() <= opt,
        }
    })
}

/// The most-violating basic position (scaled tolerance), with the sign
/// of the violation: `+1` below the lower bound (the variable must
/// rise), `−1` above the upper. Ties break toward the lowest position.
fn select_leaving<F: BasisFactor>(core: &Core<F>) -> Option<(usize, f64)> {
    let feas = core.opts.feas_tol;
    let mut best: Option<(usize, f64, f64)> = None; // (row, viol, sigma)
    for (i, &b) in core.basis.iter().enumerate() {
        let v = core.x[b];
        let (lo, hi) = (core.lb[b], core.ub[b]);
        let (viol, sigma) = if v < lo - viol_tol(lo, feas) {
            (lo - v, 1.0)
        } else if v > hi + viol_tol(hi, feas) {
            (v - hi, -1.0)
        } else {
            continue;
        };
        let better = match best {
            None => true,
            Some((_, bv, _)) => viol > bv * (1.0 + DUAL_RATIO_TIE_REL),
        };
        if better {
            best = Some((i, viol, sigma));
        }
    }
    best.map(|(i, _, sigma)| (i, sigma))
}

/// Run dual simplex iterations until primal feasibility (⇒ optimality,
/// since dual feasibility is maintained), primal infeasibility
/// (`Unbounded` outcome, by dual-unboundedness) or a budget abort.
pub(crate) fn dual_iterate<F: BasisFactor>(core: &mut Core<F>, max_iters: u64) -> PhaseOutcome {
    loop {
        if core.iterations >= max_iters {
            return PhaseOutcome::Abort(SolveError::IterationLimit);
        }
        if llamp_faults::should_inject("solve.stall") {
            return PhaseOutcome::Abort(SolveError::Injected);
        }
        if let Some(deadline) = core.deadline {
            if core.iterations & 63 == 0 && std::time::Instant::now() > deadline {
                return PhaseOutcome::Abort(SolveError::TimeLimit);
            }
        }

        let Some((r, sigma)) = select_leaving(core) else {
            return PhaseOutcome::Done;
        };
        core.iterations += 1;
        let out = core.basis[r];
        // The leaving variable exits at the bound it violates.
        let leave_at_upper = sigma < 0.0;
        let leave_bound = if leave_at_upper {
            core.ub[out]
        } else {
            core.lb[out]
        };

        // Pivot row α = Aᵀ B⁻ᵀ eᵣ via the shared hypersparse path.
        {
            let mut unit = std::mem::take(&mut core.delta);
            unit.reset(core.m);
            unit.set(r, 1.0);
            core.factor.btran_sparse(&unit, &mut core.rho);
            unit.clear();
            core.delta = unit;
        }
        core.stats.btran_calls += 1;
        core.stats.btran_nnz += core.rho.nnz() as u64;
        core.scatter_alpha();

        // Dual ratio test. `x_br` moves by `−α_j · Δx_j`; eligibility is
        // the sign pattern that pushes it toward the violated bound.
        let pivot_tol = core.opts.pivot_tol;
        let mut entering: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        let mut best_alpha = 0.0f64;
        for &ju in core.alpha.indices() {
            let j = ju as usize;
            let aj = core.alpha.get(j);
            if aj.abs() <= pivot_tol || core.lb[j] == core.ub[j] {
                continue;
            }
            let eligible = match core.status[j] {
                NbStatus::Basic => false,
                // At lower: x_j can only increase (Δ > 0) ⇒ x_br moves by
                // −α_j·Δ; rising (σ=+1) needs α_j < 0, falling α_j > 0.
                NbStatus::Lower => sigma * aj < 0.0,
                // At upper: x_j can only decrease ⇒ x_br moves by +α_j·Δ.
                NbStatus::Upper => sigma * aj > 0.0,
                // Free: moves either way.
                NbStatus::FreeZero => true,
            };
            if !eligible {
                continue;
            }
            let ratio = core.d[j].abs() / aj.abs();
            let better = match entering {
                None => true,
                Some(_) if ratio < best_ratio * (1.0 - DUAL_RATIO_TIE_REL) => true,
                Some(cur) if ratio <= best_ratio * (1.0 + DUAL_RATIO_TIE_REL) => {
                    // Tied ratio: keep the largest pivot, then lowest index
                    // (alpha.indices() is not sorted, so compare explicitly).
                    aj.abs() > best_alpha * (1.0 + DUAL_RATIO_TIE_REL)
                        || (aj.abs() >= best_alpha * (1.0 - DUAL_RATIO_TIE_REL) && j < cur)
                }
                Some(_) => false,
            };
            if better {
                entering = Some(j);
                best_ratio = ratio;
                best_alpha = aj.abs();
            }
        }
        let Some(q) = entering else {
            // A violated row with no sign-eligible column: the primal
            // problem is infeasible (dual unbounded ray).
            return PhaseOutcome::Unbounded;
        };
        let alpha_q = core.alpha.get(q);

        // Reduced-cost update d ← d − θ_d·α, θ_d = d_q / α_q (θ_d's sign
        // automatically gives the leaving variable the reduced cost its
        // exit bound requires: d_out = −θ_d).
        let theta_d = core.d[q] / alpha_q;
        for &ju in core.alpha.indices() {
            let j = ju as usize;
            if core.status[j] == NbStatus::Basic || j == q {
                continue;
            }
            let aj = core.alpha.get(j);
            if aj != 0.0 {
                core.d[j] -= theta_d * aj;
            }
        }
        core.d[q] = 0.0;
        core.d[out] = -theta_d;

        // Primal step: FTRAN the entering column, move the leaving
        // variable exactly onto its bound.
        {
            let view = ColsView {
                start: &core.col_start,
                rows: &core.col_rows,
                vals: &core.col_vals,
            };
            core.factor.ftran_col(view, q, &mut core.w);
        }
        core.w.sort_indices();
        core.stats.ftran_calls += 1;
        core.stats.ftran_nnz += core.w.nnz() as u64;
        let w_r = core.w.get(r);
        if w_r.abs() <= pivot_tol {
            // FTRAN disagrees with the scattered pivot row at pivot
            // magnitude — numerically wedged; refactorise and retry once
            // per basis, else give up via the iteration budget.
            if !core.refactorize() {
                return PhaseOutcome::Abort(SolveError::IterationLimit);
            }
            core.recompute_basics();
            core.resync_d(false, true);
            continue;
        }
        let step = (core.x[out] - leave_bound) / w_r;
        core.x[q] += step;
        for (i, wi) in core.w.iter() {
            if wi != 0.0 {
                let b = core.basis[i];
                core.x[b] -= step * wi;
            }
        }

        core.stats.pivots += 1;
        core.x[out] = leave_bound;
        core.status[out] = if leave_at_upper {
            NbStatus::Upper
        } else {
            NbStatus::Lower
        };
        core.in_basis[out] = -1;
        core.basis[r] = q;
        core.in_basis[q] = r as i32;
        core.status[q] = NbStatus::Basic;
        core.factor.update(&core.w, r);
        core.factor_fresh = false;
        core.pivots_since_refactor += 1;

        let eta_heavy = core.pivots_since_refactor >= 16
            && core.factor.factor_nnz() > 0
            && core.factor.update_nnz() > 2 * core.factor.factor_nnz();
        // A singular refactorisation keeps the eta-updated factor,
        // matching the primal's behaviour.
        if (core.pivots_since_refactor >= core.opts.refactor_every || eta_heavy)
            && core.refactorize()
        {
            core.recompute_basics();
            core.resync_d(false, true);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LpModel, Objective, Relation};
    use crate::simplex::solve_sparse;

    const INF: f64 = f64::INFINITY;

    fn running_example(l_lb: f64) -> LpModel {
        let mut m = LpModel::new(Objective::Minimize);
        let l = m.add_var("l", l_lb, INF, 0.0);
        let y1 = m.add_var("y1", f64::NEG_INFINITY, INF, 0.0);
        let t = m.add_var("t", f64::NEG_INFINITY, INF, 1.0);
        m.add_constraint("c1", &[(y1, 1.0), (l, -1.0)], Relation::Ge, 0.115);
        m.add_constraint("c2", &[(y1, 1.0)], Relation::Ge, 0.5);
        m.add_constraint("c3", &[(t, 1.0)], Relation::Ge, 1.1);
        m.add_constraint("c4", &[(t, 1.0), (y1, -1.0)], Relation::Ge, 1.0);
        m
    }

    #[test]
    fn cold_dual_matches_sparse_bitwise() {
        let m = running_example(0.5);
        let opts = SimplexOptions::default();
        let d = solve_dual(&m, &opts, None).unwrap();
        let s = solve_sparse(&m, &opts, None).unwrap();
        assert_eq!(d.objective().to_bits(), s.objective().to_bits());
        assert_eq!(d.basis(), s.basis());
    }

    #[test]
    fn bound_move_resolves_via_dual_pivots() {
        // Solve at l ≥ 0.5, then push the bound past the critical latency
        // (0.385 < 0.5 < 0.9): the old basis is dual feasible but primal
        // infeasible at l ≥ 0.9, exactly the dual simplex's case.
        let opts = SimplexOptions::default();
        let first = solve_sparse(&running_example(0.5), &opts, None).unwrap();
        let m2 = running_example(0.9);
        let dual = solve_dual(&m2, &opts, Some(first.basis())).unwrap();
        let cold = solve_sparse(&m2, &opts, None).unwrap();
        assert_eq!(dual.objective().to_bits(), cold.objective().to_bits());
        assert_eq!(dual.basis(), cold.basis());
    }

    #[test]
    fn in_window_warm_start_needs_no_dual_pivots() {
        let opts = SimplexOptions::default();
        let first = solve_sparse(&running_example(0.5), &opts, None).unwrap();
        // 0.6 stays inside the latency-bound basis's stability window
        // [0.385, ∞): the warm basis remains primal feasible, so the dual
        // path degrades to the primal confirmation pass only.
        let m2 = running_example(0.6);
        let dual = solve_dual(&m2, &opts, Some(first.basis())).unwrap();
        assert_eq!(dual.iterations(), 1, "only the optimality pricing pass");
    }

    #[test]
    fn objective_change_falls_back_to_primal_bitwise() {
        // Flip the objective (the `tolerance()` query shape): the warm
        // basis is no longer dual feasible, so the dual entry point must
        // fall back to the primal driver and match `solve_sparse` warm.
        let opts = SimplexOptions::default();
        let first = solve_sparse(&running_example(0.5), &opts, None).unwrap();
        let mut m2 = running_example(0.5);
        m2.set_sense(Objective::Maximize);
        m2.set_objective(&[(crate::model::VarId(0), 1.0)]); // maximize l
        m2.set_var_ub(crate::model::VarId(2), 2.0); // t ≤ 2
        let dual = solve_dual(&m2, &opts, Some(first.basis())).unwrap();
        let warm = solve_sparse(&m2, &opts, Some(first.basis())).unwrap();
        assert_eq!(dual.objective().to_bits(), warm.objective().to_bits());
        assert_eq!(dual.basis(), warm.basis());
        assert!((dual.objective() - 0.885).abs() < 1e-7);
    }

    #[test]
    fn dual_detects_infeasibility_after_bound_move() {
        let opts = SimplexOptions::default();
        let mut m = LpModel::new(Objective::Minimize);
        let x = m.add_var("x", 0.0, 1.0, 1.0);
        m.add_constraint("r", &[(x, 1.0)], Relation::Le, 2.0);
        let first = solve_sparse(&m, &opts, None).unwrap();
        // Move x's box past the row bound (x ≥ 3 against x ≤ 2): the warm
        // basis is dual feasible, and the dual ray certifies infeasibility.
        let mut m2 = LpModel::new(Objective::Minimize);
        let x2 = m2.add_var("x", 3.0, 4.0, 1.0);
        m2.add_constraint("r", &[(x2, 1.0)], Relation::Le, 2.0);
        assert_eq!(
            solve_dual(&m2, &opts, Some(first.basis())).unwrap_err(),
            SolveError::Infeasible
        );
    }
}

//! Convex piecewise-linear functions as upper envelopes of lines.
//!
//! The runtime of an MPI program under LogGPS is
//! `T(L) = max_i (a_i·L + C_i)` over all paths through the execution graph
//! (paper Eq. 3) — a convex, nondecreasing, piecewise-linear function of the
//! latency. This module represents such functions exactly as the upper
//! envelope of a set of lines and implements the operations the parametric
//! DAG solver needs:
//!
//! * `max` of two envelopes (a vertex joining two predecessor paths),
//! * adding an affine function (traversing an edge of cost `c + a·L`),
//! * evaluation, right-derivatives (`λ_L`), breakpoints (critical
//!   latencies `L_c`), window clipping, and inversion (latency tolerance).
//!
//! Everything is exact up to f64 arithmetic: no sampling, no sweeps.

/// A line `y = slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Line {
    /// Coefficient of the parameter (for `T(L)`: the number of
    /// non-overlapped messages along a path).
    pub slope: f64,
    /// Constant part (all other path costs).
    pub intercept: f64,
}

impl Line {
    /// Construct a line.
    pub fn new(slope: f64, intercept: f64) -> Self {
        Self { slope, intercept }
    }

    /// Evaluate at `x`.
    #[inline]
    pub fn eval(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Where two lines with `b.slope > a.slope` cross.
#[inline]
fn intersect_x(a: Line, b: Line) -> f64 {
    (a.intercept - b.intercept) / (b.slope - a.slope)
}

const SLOPE_EPS: f64 = 1e-9;

/// Result of inverting a nondecreasing envelope against a cap value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Invert {
    /// The function never exceeds the cap: any `x` is admissible.
    Always,
    /// The function exceeds the cap everywhere.
    Never,
    /// The function crosses the cap at this `x` (largest admissible value).
    At(f64),
}

/// Upper envelope of a non-empty set of lines: a convex piecewise-linear
/// function. Lines are stored left-to-right (slopes strictly increasing),
/// each maximal on some interval.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    lines: Vec<Line>,
}

impl Envelope {
    /// The constant-zero envelope (single line `y = 0`).
    pub fn zero() -> Self {
        Self {
            lines: vec![Line::new(0.0, 0.0)],
        }
    }

    /// Envelope of a single line.
    pub fn from_line(line: Line) -> Self {
        Self { lines: vec![line] }
    }

    /// Build the upper envelope of an arbitrary set of lines.
    ///
    /// # Panics
    /// Panics when `lines` is empty.
    pub fn from_lines(mut lines: Vec<Line>) -> Self {
        assert!(!lines.is_empty(), "envelope of zero lines");
        lines.sort_by(|a, b| {
            a.slope
                .partial_cmp(&b.slope)
                .unwrap()
                .then(a.intercept.partial_cmp(&b.intercept).unwrap())
        });
        let mut hull: Vec<Line> = Vec::with_capacity(lines.len());
        for line in lines {
            // Identical slope: only the largest intercept survives. Input is
            // sorted so the incoming line has the larger (or equal) one.
            if let Some(last) = hull.last() {
                if (line.slope - last.slope).abs() <= SLOPE_EPS {
                    if line.intercept <= last.intercept {
                        continue;
                    }
                    hull.pop();
                }
            }
            while hull.len() >= 2 {
                let a = hull[hull.len() - 2];
                let b = hull[hull.len() - 1];
                // b is useless if the new line already beats it where b
                // overtakes a.
                if intersect_x(a, line) <= intersect_x(a, b) {
                    hull.pop();
                } else {
                    break;
                }
            }
            // With exactly one line on the stack, pop it if dominated
            // everywhere... a line with smaller slope is never dominated
            // everywhere by a steeper one, so nothing to do.
            hull.push(line);
        }
        Self { lines: hull }
    }

    /// Number of linear pieces.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Whether this envelope has exactly one piece (affine function).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Access the pieces left-to-right.
    pub fn lines(&self) -> &[Line] {
        &self.lines
    }

    /// Index of the piece active at `x` (right-continuous: at a breakpoint
    /// the steeper piece wins, matching the right derivative).
    fn active_index(&self, x: f64) -> usize {
        // Binary search over breakpoints: piece i is active on
        // [bp(i-1), bp(i)] where bp(i) = intersect(lines[i], lines[i+1]).
        let mut lo = 0usize;
        let mut hi = self.lines.len() - 1;
        while lo < hi {
            let mid = (lo + hi) / 2;
            let bp = intersect_x(self.lines[mid], self.lines[mid + 1]);
            if x >= bp {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Evaluate the envelope at `x`.
    pub fn eval(&self, x: f64) -> f64 {
        self.lines[self.active_index(x)].eval(x)
    }

    /// Right derivative at `x`. For `T(L)` this is the latency sensitivity
    /// `λ_L` (the message count on the critical path) at latency `x`.
    pub fn slope_at(&self, x: f64) -> f64 {
        self.lines[self.active_index(x)].slope
    }

    /// The breakpoints (x-coordinates where the active piece changes).
    /// For `T(L)` these are the *critical latencies* `L_c`.
    pub fn breakpoints(&self) -> Vec<f64> {
        self.lines
            .windows(2)
            .map(|w| intersect_x(w[0], w[1]))
            .collect()
    }

    /// Add the affine function `a·x + c` (edge traversal in the DAG DP).
    pub fn add_affine(&mut self, slope: f64, intercept: f64) {
        for l in &mut self.lines {
            l.slope += slope;
            l.intercept += intercept;
        }
    }

    /// Pointwise maximum with another envelope (vertex join in the DAG DP).
    pub fn max_with(&self, other: &Envelope) -> Envelope {
        let mut lines = Vec::with_capacity(self.lines.len() + other.lines.len());
        lines.extend_from_slice(&self.lines);
        lines.extend_from_slice(&other.lines);
        Envelope::from_lines(lines)
    }

    /// Pointwise sum with another envelope (sequential composition of two
    /// convex path segments). Exact: the sum of two convex PWLs is the
    /// interval-wise sum of their active lines.
    pub fn sum_with(&self, other: &Envelope) -> Envelope {
        let mut out: Vec<Line> = Vec::with_capacity(self.lines.len() + other.lines.len());
        let (mut i, mut j) = (0usize, 0usize);
        loop {
            let a = self.lines[i];
            let b = other.lines[j];
            out.push(Line::new(a.slope + b.slope, a.intercept + b.intercept));
            // Advance whichever envelope's piece ends first.
            let bp_a = if i + 1 < self.lines.len() {
                intersect_x(self.lines[i], self.lines[i + 1])
            } else {
                f64::INFINITY
            };
            let bp_b = if j + 1 < other.lines.len() {
                intersect_x(other.lines[j], other.lines[j + 1])
            } else {
                f64::INFINITY
            };
            if bp_a.is_infinite() && bp_b.is_infinite() {
                break;
            }
            if bp_a <= bp_b {
                i += 1;
            }
            if bp_b <= bp_a {
                j += 1;
            }
        }
        Envelope::from_lines(out)
    }

    /// Drop pieces that are never active within `[lo, hi]`. Keeps the
    /// envelope exact inside the window (values outside may change). This
    /// is what keeps the parametric DAG solver near-linear: per-vertex
    /// envelopes retain only the handful of slopes that can win inside the
    /// latency interval of interest.
    pub fn clip(&mut self, lo: f64, hi: f64) {
        debug_assert!(lo <= hi);
        let first = self.active_index(lo);
        let last = self.active_index(hi);
        if first > 0 || last + 1 < self.lines.len() {
            self.lines.drain(last + 1..);
            self.lines.drain(..first);
        }
    }

    /// Largest `x` with `f(x) ≤ cap`, assuming all slopes are nonnegative
    /// (the envelope is nondecreasing). Used for latency tolerance: the
    /// biggest `L` keeping `T(L)` under the allowed runtime.
    pub fn invert_below(&self, cap: f64) -> Invert {
        debug_assert!(
            self.lines.iter().all(|l| l.slope >= -SLOPE_EPS),
            "invert_below requires a nondecreasing envelope"
        );
        let last = self.lines[self.lines.len() - 1];
        if last.slope <= SLOPE_EPS {
            // Constant tail: either always under the cap or never crossing.
            return if last.intercept <= cap {
                Invert::Always
            } else {
                Invert::Never
            };
        }
        if last.eval(0.0) > cap && self.lines[0].slope <= SLOPE_EPS && self.lines[0].intercept > cap
        {
            return Invert::Never;
        }
        // Walk pieces right-to-left to find the crossing piece.
        for (idx, line) in self.lines.iter().enumerate().rev() {
            let start = if idx == 0 {
                f64::NEG_INFINITY
            } else {
                intersect_x(self.lines[idx - 1], *line)
            };
            if line.slope <= SLOPE_EPS {
                // Flat piece below the cap extends left indefinitely only if
                // it is the leftmost piece.
                if line.intercept <= cap {
                    // The crossing happens in some steeper piece to the
                    // right which we already rejected; cap lies within this
                    // flat piece's reach.
                    continue;
                }
                return Invert::Never;
            }
            let x = (cap - line.intercept) / line.slope;
            if x >= start {
                return Invert::At(x);
            }
        }
        Invert::Never
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_max(lines: &[Line], x: f64) -> f64 {
        lines
            .iter()
            .map(|l| l.eval(x))
            .fold(f64::NEG_INFINITY, f64::max)
    }

    #[test]
    fn single_line() {
        let e = Envelope::from_line(Line::new(2.0, 1.0));
        assert_eq!(e.eval(3.0), 7.0);
        assert_eq!(e.slope_at(100.0), 2.0);
        assert!(e.breakpoints().is_empty());
    }

    #[test]
    fn paper_running_example_envelope() {
        // T(L) = max(1.5, L + 1.115): breakpoint at 0.385 (critical
        // latency), slope 0 below, 1 above (Fig. 4c).
        let e = Envelope::from_lines(vec![Line::new(0.0, 1.5), Line::new(1.0, 1.115)]);
        assert_eq!(e.len(), 2);
        let bps = e.breakpoints();
        assert!((bps[0] - 0.385).abs() < 1e-12);
        assert_eq!(e.slope_at(0.2), 0.0);
        assert_eq!(e.slope_at(0.5), 1.0);
        assert!((e.eval(0.5) - 1.615).abs() < 1e-12);
        // Tolerance: largest L with T <= 2 is 0.885 (Fig. 6).
        match e.invert_below(2.0) {
            Invert::At(x) => assert!((x - 0.885).abs() < 1e-12),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dominated_lines_are_dropped() {
        let e = Envelope::from_lines(vec![
            Line::new(1.0, 0.0),
            Line::new(1.0, -5.0),  // same slope, lower: dropped
            Line::new(0.5, -10.0), // below everywhere in relevant range
            Line::new(2.0, -100.0),
        ]);
        for &x in &[-10.0, 0.0, 50.0, 150.0] {
            let full = brute_max(
                &[
                    Line::new(1.0, 0.0),
                    Line::new(1.0, -5.0),
                    Line::new(0.5, -10.0),
                    Line::new(2.0, -100.0),
                ],
                x,
            );
            assert!((e.eval(x) - full).abs() < 1e-9, "x={x}");
        }
    }

    #[test]
    fn max_with_matches_pointwise() {
        let a = Envelope::from_lines(vec![Line::new(0.0, 3.0), Line::new(2.0, -1.0)]);
        let b = Envelope::from_lines(vec![Line::new(1.0, 0.0)]);
        let m = a.max_with(&b);
        for i in -20..40 {
            let x = i as f64 * 0.25;
            let want = a.eval(x).max(b.eval(x));
            assert!((m.eval(x) - want).abs() < 1e-9, "x={x}");
        }
    }

    #[test]
    fn sum_with_matches_pointwise() {
        let a = Envelope::from_lines(vec![Line::new(0.0, 3.0), Line::new(2.0, -1.0)]);
        let b = Envelope::from_lines(vec![Line::new(0.0, 1.0), Line::new(1.0, 0.0)]);
        let s = a.sum_with(&b);
        for i in -20..40 {
            let x = i as f64 * 0.25;
            let want = a.eval(x) + b.eval(x);
            assert!((s.eval(x) - want).abs() < 1e-9, "x={x}");
        }
    }

    #[test]
    fn add_affine_shifts() {
        let mut e = Envelope::from_lines(vec![Line::new(0.0, 1.0), Line::new(1.0, 0.0)]);
        e.add_affine(1.0, 2.0);
        assert!((e.eval(0.0) - 3.0).abs() < 1e-12); // was 1, now +2 and slope+1
        assert_eq!(e.slope_at(10.0), 2.0);
    }

    #[test]
    fn clip_preserves_window_values() {
        let lines = vec![
            Line::new(0.0, 10.0),
            Line::new(1.0, 5.0),
            Line::new(3.0, -10.0),
            Line::new(6.0, -50.0),
        ];
        let full = Envelope::from_lines(lines.clone());
        let mut clipped = full.clone();
        clipped.clip(4.0, 6.0);
        assert!(clipped.len() <= full.len());
        for i in 0..=20 {
            let x = 4.0 + (i as f64) * 0.1;
            assert!((clipped.eval(x) - full.eval(x)).abs() < 1e-9, "x={x}");
        }
    }

    #[test]
    fn invert_below_flat_function() {
        let e = Envelope::from_line(Line::new(0.0, 5.0));
        assert_eq!(e.invert_below(6.0), Invert::Always);
        assert_eq!(e.invert_below(4.0), Invert::Never);
    }

    #[test]
    fn invert_below_on_breakpoint_cap() {
        let e = Envelope::from_lines(vec![Line::new(0.0, 1.5), Line::new(1.0, 1.115)]);
        // Cap exactly at the flat level: crossing is at the breakpoint.
        match e.invert_below(1.5) {
            Invert::At(x) => assert!((x - 0.385).abs() < 1e-12),
            other => panic!("unexpected {other:?}"),
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn line_strategy() -> impl Strategy<Value = Line> {
        // Slopes like message counts: small nonnegative integers; intercepts
        // like path costs.
        (0u32..20, -1000.0f64..1000.0).prop_map(|(s, c)| Line::new(s as f64, c))
    }

    proptest! {
        #[test]
        fn envelope_matches_brute_force(
            lines in prop::collection::vec(line_strategy(), 1..40),
            xs in prop::collection::vec(-500.0f64..500.0, 1..20),
        ) {
            let env = Envelope::from_lines(lines.clone());
            for x in xs {
                let brute = lines.iter().map(|l| l.eval(x)).fold(f64::NEG_INFINITY, f64::max);
                prop_assert!((env.eval(x) - brute).abs() < 1e-6 * (1.0 + brute.abs()));
            }
        }

        #[test]
        fn envelope_slopes_strictly_increase(
            lines in prop::collection::vec(line_strategy(), 1..40),
        ) {
            let env = Envelope::from_lines(lines);
            for w in env.lines().windows(2) {
                prop_assert!(w[1].slope > w[0].slope);
            }
        }

        #[test]
        fn sum_commutes(
            a in prop::collection::vec(line_strategy(), 1..10),
            b in prop::collection::vec(line_strategy(), 1..10),
            xs in prop::collection::vec(-200.0f64..200.0, 1..10),
        ) {
            let ea = Envelope::from_lines(a);
            let eb = Envelope::from_lines(b);
            let s1 = ea.sum_with(&eb);
            let s2 = eb.sum_with(&ea);
            for x in xs {
                prop_assert!((s1.eval(x) - s2.eval(x)).abs() < 1e-6 * (1.0 + s1.eval(x).abs()));
                prop_assert!((s1.eval(x) - (ea.eval(x) + eb.eval(x))).abs() < 1e-6 * (1.0 + s1.eval(x).abs()));
            }
        }

        #[test]
        fn invert_below_is_consistent(
            lines in prop::collection::vec(line_strategy(), 1..20),
            cap in -500.0f64..2000.0,
        ) {
            let env = Envelope::from_lines(lines);
            match env.invert_below(cap) {
                Invert::At(x) => {
                    prop_assert!(env.eval(x) <= cap + 1e-6 * (1.0 + cap.abs()));
                    // A step to the right must exceed the cap.
                    prop_assert!(env.eval(x + 1.0) >= cap - 1e-6 * (1.0 + cap.abs()));
                }
                Invert::Always => {
                    prop_assert!(env.eval(1e6) <= cap + 1e-6 * (1.0 + cap.abs()));
                }
                Invert::Never => {
                    prop_assert!(env.eval(-1e6) > cap - 1e-6 * (1.0 + cap.abs()));
                }
            }
        }
    }
}

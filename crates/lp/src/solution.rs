//! Solved-model accessors: primal values, duals, reduced costs, ranging.
//!
//! The fields mirror what LLAMP reads from Gurobi:
//!
//! * the objective value (predicted runtime `T`),
//! * the reduced cost of the latency variable (`λ_L = ∂T/∂L`, §II-D1),
//! * the *range of feasibility* of a variable's lower bound — Gurobi's
//!   `SALBLow`/`SALBUp` attributes — which Algorithm 2 uses to walk the
//!   critical-latency breakpoints,
//! * per-constraint tightness, which identifies the critical path (§II-D1:
//!   "if a set of constraints are tight after optimization, their
//!   corresponding edges are on the critical path").

use crate::model::{ConId, VarId};
use crate::simplex::RangingData;

/// Counters describing how a solve spent its effort — the observability
/// layer of the hypersparse hot path. Cheap to collect (increments on
/// paths that already run), deterministic for a deterministic pivot
/// sequence, and additive: [`SolveStats::merge`] folds per-solve stats
/// into campaign-level aggregates.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SolveStats {
    /// Simplex iterations (phases 1 and 2 combined).
    pub iterations: u64,
    /// Iterations spent restoring primal feasibility (phase 1).
    pub phase1_iterations: u64,
    /// Basis exchanges (pivots); the remainder were bound flips.
    pub pivots: u64,
    /// Bound flips (the entering variable traversed its whole box).
    pub bound_flips: u64,
    /// Basis refactorisations (periodic + eta-growth-triggered).
    pub refactorizations: u64,
    /// Hot-path FTRAN calls and the nonzeros they produced.
    pub ftran_calls: u64,
    /// Total nonzeros across hot-path FTRAN results.
    pub ftran_nnz: u64,
    /// Hot-path BTRAN calls (pivot rows + phase-1 cost corrections).
    pub btran_calls: u64,
    /// Total nonzeros across hot-path BTRAN results.
    pub btran_nnz: u64,
    /// Full pricing passes (candidate-list refills / optimality proofs).
    pub pricing_full_scans: u64,
    /// Candidate-list pricing passes (the cheap, common case).
    pub pricing_candidate_scans: u64,
    /// Devex reference-framework resets.
    pub devex_resets: u64,
    /// Rows of the largest model solved (denominator for nnz ratios).
    pub rows: u64,
    /// Worst relative gap between the incrementally maintained reduced
    /// costs and a from-scratch recompute, observed at periodic resyncs.
    pub max_resync_drift: f64,
}

impl SolveStats {
    /// Mean FTRAN result density (nnz / m), in `[0, 1]`.
    pub fn ftran_density(&self) -> f64 {
        if self.ftran_calls == 0 || self.rows == 0 {
            0.0
        } else {
            self.ftran_nnz as f64 / (self.ftran_calls * self.rows) as f64
        }
    }

    /// Mean BTRAN result density (nnz / m), in `[0, 1]`.
    pub fn btran_density(&self) -> f64 {
        if self.btran_calls == 0 || self.rows == 0 {
            0.0
        } else {
            self.btran_nnz as f64 / (self.btran_calls * self.rows) as f64
        }
    }

    /// Fold another solve's counters into this aggregate.
    pub fn merge(&mut self, other: &SolveStats) {
        self.iterations += other.iterations;
        self.phase1_iterations += other.phase1_iterations;
        self.pivots += other.pivots;
        self.bound_flips += other.bound_flips;
        self.refactorizations += other.refactorizations;
        self.ftran_calls += other.ftran_calls;
        self.ftran_nnz += other.ftran_nnz;
        self.btran_calls += other.btran_calls;
        self.btran_nnz += other.btran_nnz;
        self.pricing_full_scans += other.pricing_full_scans;
        self.pricing_candidate_scans += other.pricing_candidate_scans;
        self.devex_resets += other.devex_resets;
        self.rows = self.rows.max(other.rows);
        self.max_resync_drift = self.max_resync_drift.max(other.max_resync_drift);
    }

    /// Render a compact human-readable block (the `--solver-stats` view).
    pub fn render(&self) -> String {
        format!(
            "iterations: {} ({} phase-1), pivots: {}, bound flips: {}\n\
             refactorisations: {}, devex resets: {}\n\
             ftran: {} calls ({:.1}% dense), btran: {} calls ({:.1}% dense)\n\
             pricing: {} full scans, {} candidate scans\n\
             max reduced-cost resync drift: {:.2e}",
            self.iterations,
            self.phase1_iterations,
            self.pivots,
            self.bound_flips,
            self.refactorizations,
            self.devex_resets,
            self.ftran_calls,
            100.0 * self.ftran_density(),
            self.btran_calls,
            100.0 * self.btran_density(),
            self.pricing_full_scans,
            self.pricing_candidate_scans,
            self.max_resync_drift
        )
    }
}

/// Basis membership of a variable in the optimal solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarStatus {
    /// In the basis (value strictly between bounds, barring degeneracy).
    Basic,
    /// Nonbasic, resting on its lower bound.
    AtLower,
    /// Nonbasic, resting on its upper bound.
    AtUpper,
    /// Nonbasic free variable pinned at zero.
    FreeZero,
}

/// A complete basis snapshot: the status of every structural column and
/// every row's logical (slack) column. This is the warm-start currency:
/// [`Solution::basis`] exports it, `simplex::solve_dense` /
/// `simplex::solve_sparse` accept it as a starting point, and
/// `simplex::reextract` rebuilds a full [`Solution`] from it without any
/// pivoting. A basis outlives bound, objective and sense edits on its
/// model (the edits Algorithm 2 and the tolerance flip perform), which is
/// exactly what makes latency sweeps cheap: the previous optimum is a
/// handful of pivots from the next.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Basis {
    /// Status of each structural variable, by column index.
    pub(crate) cols: Vec<VarStatus>,
    /// Status of each row's logical variable, by row index.
    pub(crate) rows: Vec<VarStatus>,
}

impl Basis {
    /// Assemble a basis from explicit per-column / per-row statuses — the
    /// entry point for *crash bases* built by model constructors that
    /// know their problem's structure (e.g. `llamp-core`'s topological
    /// crash for execution-graph LPs). The solver verifies the basis on
    /// installation (column count, nonsingular refactorisation) and falls
    /// back to the all-logical start if it is unusable, so a bad crash
    /// costs one failed factorisation, never correctness.
    pub fn from_statuses(cols: Vec<VarStatus>, rows: Vec<VarStatus>) -> Self {
        Self { cols, rows }
    }

    /// Number of structural columns the basis was taken from.
    pub fn num_vars(&self) -> usize {
        self.cols.len()
    }

    /// Number of rows the basis was taken from.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }
}

/// The result of a successful solve. All reported quantities are expressed
/// in the *user's* optimisation sense (signs are flipped internally for
/// maximisation problems).
#[derive(Debug, Clone)]
pub struct Solution {
    pub(crate) objective: f64,
    pub(crate) x: Vec<f64>,
    pub(crate) reduced_costs: Vec<f64>,
    pub(crate) duals: Vec<f64>,
    pub(crate) row_activity: Vec<f64>,
    pub(crate) var_status: Vec<VarStatus>,
    pub(crate) iterations: u64,
    pub(crate) stats: SolveStats,
    pub(crate) row_lb: Vec<f64>,
    pub(crate) row_ub: Vec<f64>,
    /// Full basis snapshot (structural + logical statuses) for warm
    /// starts.
    pub(crate) basis: Basis,
    /// Final basis factorisation, retained so ranging queries can run
    /// on demand instead of eagerly for every variable. Shared (`Arc`) so
    /// cloning a `Solution` — which warm-state bookkeeping does per
    /// re-solve — does not copy the constraint matrix and LU factors.
    pub(crate) ranging: std::sync::Arc<RangingData>,
}

impl Solution {
    /// Optimal objective value.
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Value of a variable at the optimum.
    pub fn value(&self, v: VarId) -> f64 {
        self.x[v.0 as usize]
    }

    /// Reduced cost of a variable. For a `min t` LLAMP model this is
    /// `∂T/∂(bound of v)` when `v` is nonbasic at a bound — reading it for
    /// the latency variable yields the latency sensitivity `λ_L`.
    pub fn reduced_cost(&self, v: VarId) -> f64 {
        self.reduced_costs[v.0 as usize]
    }

    /// Dual value (shadow price) of a constraint row: the rate of change of
    /// the objective per unit increase of the row's binding bound.
    pub fn dual(&self, c: ConId) -> f64 {
        self.duals[c.0 as usize]
    }

    /// Activity `aᵀx` of a constraint row at the optimum.
    pub fn activity(&self, c: ConId) -> f64 {
        self.row_activity[c.0 as usize]
    }

    /// Whether a constraint is *tight* (its activity sits on a finite row
    /// bound). Tight rows correspond to critical-path edges in LLAMP.
    pub fn is_tight(&self, c: ConId) -> bool {
        let i = c.0 as usize;
        let a = self.row_activity[i];
        let tol = 1e-6 * (1.0 + a.abs());
        (self.row_lb[i].is_finite() && (a - self.row_lb[i]).abs() <= tol)
            || (self.row_ub[i].is_finite() && (a - self.row_ub[i]).abs() <= tol)
    }

    /// Basis status of a variable.
    pub fn var_status(&self, v: VarId) -> VarStatus {
        self.var_status[v.0 as usize]
    }

    /// Range of feasibility of the variable's **lower bound**: the interval
    /// of lower-bound values over which the current optimal basis remains
    /// optimal. The low end is the paper's `SALBLow` (Algorithm 2).
    ///
    /// For a basic variable the lower bound is slack: the range extends to
    /// `-∞` below and up to the variable's current value above. For a
    /// nonbasic variable at its upper bound the lower bound is equally
    /// slack and the range is `(-∞, ub]`.
    pub fn lb_range(&self, v: VarId) -> (f64, f64) {
        self.ranging
            .lb_range(v.0 as usize, self.var_status[v.0 as usize])
    }

    /// Equivalent of Gurobi's `SALBLow` attribute: the smallest lower-bound
    /// value for which the current basis stays optimal.
    pub fn salb_low(&self, v: VarId) -> f64 {
        self.lb_range(v).0
    }

    /// Feasible step window `[t_lo, t_hi]` (always containing 0) for a
    /// **joint** lower-bound move: every listed variable's lower bound
    /// shifts by `t·dir` simultaneously. Within the window the current
    /// basis stays optimal, so a re-solve after such a move needs zero
    /// pivots — this is the ranging query behind multi-parameter
    /// (`L`/`G`/`o`) sweep steps, generalising [`Solution::lb_range`]
    /// from the single-column pattern to an arbitrary direction.
    pub fn lb_step_range(&self, moves: &[(VarId, f64)]) -> (f64, f64) {
        let moves: Vec<(usize, f64, VarStatus)> = moves
            .iter()
            .map(|&(v, dir)| (v.0 as usize, dir, self.var_status[v.0 as usize]))
            .collect();
        self.ranging.lb_step_range(&moves)
    }

    /// Number of simplex iterations performed (phases 1 and 2 combined).
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Detailed solver-effort counters for this solve (see
    /// [`SolveStats`]).
    pub fn stats(&self) -> &SolveStats {
        &self.stats
    }

    /// The optimal basis, for warm-starting a related solve (see
    /// [`Basis`]).
    pub fn basis(&self) -> &Basis {
        &self.basis
    }
}

//! Solved-model accessors: primal values, duals, reduced costs, ranging.
//!
//! The fields mirror what LLAMP reads from Gurobi:
//!
//! * the objective value (predicted runtime `T`),
//! * the reduced cost of the latency variable (`λ_L = ∂T/∂L`, §II-D1),
//! * the *range of feasibility* of a variable's lower bound — Gurobi's
//!   `SALBLow`/`SALBUp` attributes — which Algorithm 2 uses to walk the
//!   critical-latency breakpoints,
//! * per-constraint tightness, which identifies the critical path (§II-D1:
//!   "if a set of constraints are tight after optimization, their
//!   corresponding edges are on the critical path").

use crate::model::{ConId, VarId};
use crate::simplex::RangingData;

/// Terminal state of a solve attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveStatus {
    /// An optimal basic solution was found.
    Optimal,
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded in the optimisation direction.
    Unbounded,
    /// The iteration limit was hit before convergence.
    IterationLimit,
}

impl std::fmt::Display for SolveStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SolveStatus::Optimal => "optimal",
            SolveStatus::Infeasible => "infeasible",
            SolveStatus::Unbounded => "unbounded",
            SolveStatus::IterationLimit => "iteration limit",
        };
        f.write_str(s)
    }
}

impl std::error::Error for SolveStatus {}

/// Basis membership of a variable in the optimal solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarStatus {
    /// In the basis (value strictly between bounds, barring degeneracy).
    Basic,
    /// Nonbasic, resting on its lower bound.
    AtLower,
    /// Nonbasic, resting on its upper bound.
    AtUpper,
    /// Nonbasic free variable pinned at zero.
    FreeZero,
}

/// A complete basis snapshot: the status of every structural column and
/// every row's logical (slack) column. This is the warm-start currency:
/// [`Solution::basis`] exports it, `simplex::solve_dense` /
/// `simplex::solve_sparse` accept it as a starting point, and
/// `simplex::reextract` rebuilds a full [`Solution`] from it without any
/// pivoting. A basis outlives bound, objective and sense edits on its
/// model (the edits Algorithm 2 and the tolerance flip perform), which is
/// exactly what makes latency sweeps cheap: the previous optimum is a
/// handful of pivots from the next.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Basis {
    /// Status of each structural variable, by column index.
    pub(crate) cols: Vec<VarStatus>,
    /// Status of each row's logical variable, by row index.
    pub(crate) rows: Vec<VarStatus>,
}

impl Basis {
    /// Number of structural columns the basis was taken from.
    pub fn num_vars(&self) -> usize {
        self.cols.len()
    }

    /// Number of rows the basis was taken from.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }
}

/// The result of a successful solve. All reported quantities are expressed
/// in the *user's* optimisation sense (signs are flipped internally for
/// maximisation problems).
#[derive(Debug, Clone)]
pub struct Solution {
    pub(crate) objective: f64,
    pub(crate) x: Vec<f64>,
    pub(crate) reduced_costs: Vec<f64>,
    pub(crate) duals: Vec<f64>,
    pub(crate) row_activity: Vec<f64>,
    pub(crate) var_status: Vec<VarStatus>,
    pub(crate) iterations: u64,
    pub(crate) row_lb: Vec<f64>,
    pub(crate) row_ub: Vec<f64>,
    /// Full basis snapshot (structural + logical statuses) for warm
    /// starts.
    pub(crate) basis: Basis,
    /// Final basis factorisation, retained so ranging queries can run
    /// on demand instead of eagerly for every variable. Shared (`Arc`) so
    /// cloning a `Solution` — which warm-state bookkeeping does per
    /// re-solve — does not copy the constraint matrix and LU factors.
    pub(crate) ranging: std::sync::Arc<RangingData>,
}

impl Solution {
    /// Optimal objective value.
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Value of a variable at the optimum.
    pub fn value(&self, v: VarId) -> f64 {
        self.x[v.0 as usize]
    }

    /// Reduced cost of a variable. For a `min t` LLAMP model this is
    /// `∂T/∂(bound of v)` when `v` is nonbasic at a bound — reading it for
    /// the latency variable yields the latency sensitivity `λ_L`.
    pub fn reduced_cost(&self, v: VarId) -> f64 {
        self.reduced_costs[v.0 as usize]
    }

    /// Dual value (shadow price) of a constraint row: the rate of change of
    /// the objective per unit increase of the row's binding bound.
    pub fn dual(&self, c: ConId) -> f64 {
        self.duals[c.0 as usize]
    }

    /// Activity `aᵀx` of a constraint row at the optimum.
    pub fn activity(&self, c: ConId) -> f64 {
        self.row_activity[c.0 as usize]
    }

    /// Whether a constraint is *tight* (its activity sits on a finite row
    /// bound). Tight rows correspond to critical-path edges in LLAMP.
    pub fn is_tight(&self, c: ConId) -> bool {
        let i = c.0 as usize;
        let a = self.row_activity[i];
        let tol = 1e-6 * (1.0 + a.abs());
        (self.row_lb[i].is_finite() && (a - self.row_lb[i]).abs() <= tol)
            || (self.row_ub[i].is_finite() && (a - self.row_ub[i]).abs() <= tol)
    }

    /// Basis status of a variable.
    pub fn var_status(&self, v: VarId) -> VarStatus {
        self.var_status[v.0 as usize]
    }

    /// Range of feasibility of the variable's **lower bound**: the interval
    /// of lower-bound values over which the current optimal basis remains
    /// optimal. The low end is the paper's `SALBLow` (Algorithm 2).
    ///
    /// For a basic variable the lower bound is slack: the range extends to
    /// `-∞` below and up to the variable's current value above. For a
    /// nonbasic variable at its upper bound the lower bound is equally
    /// slack and the range is `(-∞, ub]`.
    pub fn lb_range(&self, v: VarId) -> (f64, f64) {
        self.ranging
            .lb_range(v.0 as usize, self.var_status[v.0 as usize])
    }

    /// Equivalent of Gurobi's `SALBLow` attribute: the smallest lower-bound
    /// value for which the current basis stays optimal.
    pub fn salb_low(&self, v: VarId) -> f64 {
        self.lb_range(v).0
    }

    /// Number of simplex iterations performed (phases 1 and 2 combined).
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// The optimal basis, for warm-starting a related solve (see
    /// [`Basis`]).
    pub fn basis(&self) -> &Basis {
        &self.basis
    }
}

//! Heterogeneous LogGP (paper Appendix I).
//!
//! LogGPS assumes one uniform network. For process-placement questions the
//! paper redefines `L` and `G` as symmetric `P×P` matrices — element
//! `(i, j)` is the latency/inverse-bandwidth between ranks `i` and `j` —
//! matching a simplified HLogGP model (Bosque et al.). All other parameters
//! (`o`, `g`, compute speed) stay uniform.

use crate::params::LogGPSParams;

/// Symmetric `P×P` matrices of pairwise `L` and `G` plus the shared scalar
/// parameters.
#[derive(Debug, Clone)]
pub struct HLogGP {
    /// Shared scalar parameters (`o`, `g`, `S`, ...). The scalar `l` and
    /// `big_g` fields serve as defaults for pairs left untouched.
    pub base: LogGPSParams,
    p: usize,
    l: Vec<f64>,
    g: Vec<f64>,
}

impl HLogGP {
    /// Uniform model: every pair gets the base `L` and `G`.
    pub fn uniform(base: LogGPSParams) -> Self {
        let p = base.p as usize;
        Self {
            p,
            l: vec![base.l; p * p],
            g: vec![base.big_g; p * p],
            base,
        }
    }

    /// Build from a pairwise latency function (e.g. hop counts from a
    /// topology). `G` stays uniform.
    pub fn from_latency_fn(base: LogGPSParams, mut lat: impl FnMut(u32, u32) -> f64) -> Self {
        let p = base.p as usize;
        let mut l = vec![0.0; p * p];
        for i in 0..p {
            for j in 0..p {
                // Symmetrise by construction: use the (min, max) ordering.
                let (a, b) = (i.min(j) as u32, i.max(j) as u32);
                l[i * p + j] = if i == j { 0.0 } else { lat(a, b) };
            }
        }
        Self {
            p,
            l,
            g: vec![base.big_g; p * p],
            base,
        }
    }

    /// Number of ranks.
    pub fn nranks(&self) -> u32 {
        self.p as u32
    }

    /// Pairwise latency `L_{i,j}`.
    #[inline]
    pub fn l(&self, i: u32, j: u32) -> f64 {
        self.l[i as usize * self.p + j as usize]
    }

    /// Pairwise per-byte gap `G_{i,j}`.
    #[inline]
    pub fn g(&self, i: u32, j: u32) -> f64 {
        self.g[i as usize * self.p + j as usize]
    }

    /// Set a pairwise latency (kept symmetric).
    pub fn set_l(&mut self, i: u32, j: u32, v: f64) {
        self.l[i as usize * self.p + j as usize] = v;
        self.l[j as usize * self.p + i as usize] = v;
    }

    /// Set a pairwise per-byte gap (kept symmetric).
    pub fn set_g(&mut self, i: u32, j: u32, v: f64) {
        self.g[i as usize * self.p + j as usize] = v;
        self.g[j as usize * self.p + i as usize] = v;
    }

    /// Check the symmetry invariant (used by tests and debug assertions).
    pub fn is_symmetric(&self) -> bool {
        for i in 0..self.p {
            for j in (i + 1)..self.p {
                if self.l[i * self.p + j] != self.l[j * self.p + i]
                    || self.g[i * self.p + j] != self.g[j * self.p + i]
                {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_model() {
        let h = HLogGP::uniform(LogGPSParams::cscs_testbed(4));
        assert_eq!(h.l(0, 3), 3_000.0);
        assert_eq!(h.g(2, 1), 0.018);
        assert!(h.is_symmetric());
    }

    #[test]
    fn set_keeps_symmetry() {
        let mut h = HLogGP::uniform(LogGPSParams::cscs_testbed(4));
        h.set_l(1, 2, 500.0);
        assert_eq!(h.l(2, 1), 500.0);
        assert!(h.is_symmetric());
    }

    #[test]
    fn latency_fn_is_symmetrised() {
        let base = LogGPSParams::cscs_testbed(3);
        let h = HLogGP::from_latency_fn(base, |a, b| (a + b) as f64 * 100.0);
        assert!(h.is_symmetric());
        assert_eq!(h.l(0, 0), 0.0);
        assert_eq!(h.l(0, 2), 200.0);
        assert_eq!(h.l(2, 0), 200.0);
    }
}

//! Netgauge-style LogGP parameter measurement.
//!
//! The paper measures its clusters' LogGPS parameters with Netgauge
//! (Hoefler et al., HPCC'07) before any analysis: "To precisely measure the
//! network parameters critical for the LogGPS model, we employed Netgauge
//! 2.4.6" (§III-B). This module reimplements the LogGP fitting procedure of
//! Netgauge's `logp` module on top of an abstract [`Network`]:
//!
//! * `PRTT(1, 0, s)` — a ping-pong of one `s`-byte message each way:
//!   `2·(2o + L + (s−1)G)` under LogGP.
//! * `PRTT(n, d, s)` — `n` messages sent with inter-send delay `d`; for
//!   `d` larger than the network's per-message service time the sender is
//!   the bottleneck and the overhead `o` becomes observable:
//!   `o ≈ (PRTT(n, d, s) − PRTT(1, 0, s))/(n − 1) − d`.
//! * `G` — the slope of `PRTT(1, 0, s)` over the message size `s`
//!   (two-point fit across a size sweep, divided by 2 for the round trip).
//! * `L` — the intercept: `PRTT(1,0,1)/2 − 2o`.
//!
//! The simulator implements [`Network`] by actually simulating these
//! exchanges, so tests can verify that measurement recovers the parameters
//! the simulator was configured with — the same closure the paper gets by
//! measuring real hardware.

use crate::params::LogGPSParams;

/// Anything that can run a Netgauge PRTT experiment: send `n` messages of
/// `size` bytes with `delay` ns between consecutive sends, get them echoed
/// back, and report the total round-trip time of the last message.
pub trait Network {
    /// Parameterised round-trip time (ns).
    fn prtt(&mut self, n: usize, delay_ns: f64, size: u64) -> f64;
}

/// Measurement campaign configuration.
#[derive(Debug, Clone)]
pub struct MeasureConfig {
    /// Message sizes swept for the `G` fit.
    pub sizes: Vec<u64>,
    /// Message train length for the `o` measurement.
    pub train: usize,
    /// Inter-send delay for the `o` measurement (must exceed the service
    /// time; Netgauge grows it adaptively, we take it as a parameter).
    pub delay_ns: f64,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        Self {
            sizes: vec![1, 1 << 10, 1 << 14, 1 << 17],
            train: 16,
            delay_ns: 100_000.0,
        }
    }
}

/// Fitted LogGP parameters (a subset of [`LogGPSParams`]; `S` and `g` are
/// not observable from PRTT experiments alone).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fitted {
    /// Estimated network latency `L` (ns).
    pub l: f64,
    /// Estimated per-message overhead `o` (ns).
    pub o: f64,
    /// Estimated per-byte gap `G` (ns/byte).
    pub big_g: f64,
}

impl Fitted {
    /// Merge the fitted values into a full parameter set.
    pub fn into_params(self, template: LogGPSParams) -> LogGPSParams {
        LogGPSParams {
            l: self.l,
            o: self.o,
            big_g: self.big_g,
            ..template
        }
    }
}

/// Run the measurement campaign and fit `L`, `o`, `G`.
pub fn measure(net: &mut impl Network, cfg: &MeasureConfig) -> Fitted {
    assert!(cfg.sizes.len() >= 2, "need at least two sizes to fit G");
    assert!(cfg.train >= 2, "need a message train to observe o");

    // G: least-squares slope of PRTT(1,0,s)/2 against (s-1).
    let pts: Vec<(f64, f64)> = cfg
        .sizes
        .iter()
        .map(|&s| {
            let rtt = net.prtt(1, 0.0, s);
            ((s.saturating_sub(1)) as f64, rtt / 2.0)
        })
        .collect();
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    let big_g = if denom.abs() < f64::EPSILON {
        0.0
    } else {
        ((n * sxy - sx * sy) / denom).max(0.0)
    };

    // o: saturated sender experiment at the smallest size.
    let s0 = cfg.sizes[0];
    let base = net.prtt(1, 0.0, s0);
    let train = net.prtt(cfg.train, cfg.delay_ns, s0);
    let o = ((train - base) / (cfg.train as f64 - 1.0) - cfg.delay_ns).max(0.0);

    // L: one-way small-message time minus both overheads.
    let one_way = base / 2.0 - (s0.saturating_sub(1)) as f64 * big_g;
    let l = (one_way - 2.0 * o).max(0.0);

    Fitted { l, o, big_g }
}

/// An ideal analytical LogGP network — the ground truth the fitting code is
/// validated against (and a reference for what `PRTT` means).
#[derive(Debug, Clone, Copy)]
pub struct IdealLogGP {
    /// True parameters.
    pub params: LogGPSParams,
}

impl Network for IdealLogGP {
    fn prtt(&mut self, n: usize, delay_ns: f64, size: u64) -> f64 {
        let p = &self.params;
        // First n-1 messages pace the sender (CPU issue time o+d vs. wire
        // occupancy g+(s-1)G, whichever binds); the round trip of the last
        // message completes the PRTT (Netgauge logp methodology).
        let pace = (p.o + delay_ns).max(p.g + p.transmission(size));
        let round_trip = 2.0 * (2.0 * p.o + p.l + p.transmission(size));
        (n as f64 - 1.0) * pace + round_trip
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_ideal_parameters() {
        let truth = LogGPSParams {
            l: 3_000.0,
            o: 5_000.0,
            g: 0.0,
            big_g: 0.018,
            big_o: 0.0,
            s: u64::MAX,
            p: 2,
        };
        let mut net = IdealLogGP { params: truth };
        let fit = measure(&mut net, &MeasureConfig::default());
        assert!((fit.l - truth.l).abs() < 1.0, "L: {}", fit.l);
        assert!((fit.o - truth.o).abs() < 1.0, "o: {}", fit.o);
        assert!((fit.big_g - truth.big_g).abs() < 1e-4, "G: {}", fit.big_g);
    }

    #[test]
    fn fitted_into_params_keeps_template_fields() {
        let template = LogGPSParams::cscs_testbed(64);
        let fit = Fitted {
            l: 10.0,
            o: 20.0,
            big_g: 0.5,
        };
        let p = fit.into_params(template);
        assert_eq!(p.l, 10.0);
        assert_eq!(p.o, 20.0);
        assert_eq!(p.big_g, 0.5);
        assert_eq!(p.s, template.s);
        assert_eq!(p.p, 64);
    }
}

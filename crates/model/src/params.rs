//! LogGPS parameter vector and protocol rules.
//!
//! Parameter glossary (paper §II-A):
//!
//! * `L` — maximum network latency between two processors (ns). The central
//!   quantity of the paper.
//! * `o` — CPU overhead per message (ns), paid by sender and receiver.
//! * `g` — gap between consecutive messages of one process (ns); the paper
//!   omits it from the analysis because `o > g` on its clusters, but the
//!   simulator honours it.
//! * `G` — gap per byte (ns/byte) = inverse bandwidth; a message of `s`
//!   bytes occupies the wire for `(s−1)·G` after the first byte.
//! * `O` — CPU overhead per byte; negligible with high overlap (Hoefler et
//!   al.), dropped by the LogGPS specialisation but kept for completeness.
//! * `S` — rendezvous threshold (bytes): messages of at least `S` bytes
//!   synchronise sender and receiver before transmission.
//! * `P` — number of processes.

/// Transmission protocol selected for a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Fire-and-forget: the message is buffered by the transport.
    Eager,
    /// Handshake (REQ/data/FIN) before the payload moves (paper Fig. 14).
    Rendezvous,
}

/// A LogGPS model configuration. All times in nanoseconds, sizes in bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogGPSParams {
    /// Network latency `L` (ns).
    pub l: f64,
    /// Per-message CPU overhead `o` (ns).
    pub o: f64,
    /// Inter-message gap `g` (ns).
    pub g: f64,
    /// Per-byte gap `G` (ns/byte).
    pub big_g: f64,
    /// Per-byte CPU overhead `O` (ns/byte); zero under LogGPS.
    pub big_o: f64,
    /// Rendezvous threshold `S` (bytes).
    pub s: u64,
    /// Process count `P`.
    pub p: u32,
}

impl LogGPSParams {
    /// The 188-node CSCS test-bed cluster of the validation experiments
    /// (§III-B): `L = 3.0 µs`, `G = 0.018 ns/B`, `S = 256 KiB`. The
    /// per-message overhead `o` is application-specific in the paper
    /// (Table II); 5 µs is the LULESH/HPCG ballpark and callers override it.
    pub fn cscs_testbed(p: u32) -> Self {
        Self {
            l: 3_000.0,
            o: 5_000.0,
            g: 0.0,
            big_g: 0.018,
            big_o: 0.0,
            s: 256 * 1024,
            p,
        }
    }

    /// Piz Daint as measured for the ICON case study (§IV): `L = 1.4 µs`,
    /// `G = 0.013 ns/B`, `S = 256 KiB`, `o` between 6.03 and 8.5 µs
    /// depending on scale.
    pub fn piz_daint(p: u32) -> Self {
        Self {
            l: 1_400.0,
            o: 7_400.0,
            g: 0.0,
            big_g: 0.013,
            big_o: 0.0,
            s: 256 * 1024,
            p,
        }
    }

    /// A microsecond-scale didactic configuration matching the paper's
    /// running example (Fig. 4b): `o = 0`, `G = 5 ns/B`, eager everywhere.
    pub fn didactic() -> Self {
        Self {
            l: 0.0,
            o: 0.0,
            g: 0.0,
            big_g: 5.0,
            big_o: 0.0,
            s: u64::MAX,
            p: 2,
        }
    }

    /// Override the per-message overhead (the paper matches `o` per
    /// application from Netgauge outputs, Table II).
    pub fn with_o(mut self, o_ns: f64) -> Self {
        self.o = o_ns;
        self
    }

    /// Override the base latency.
    pub fn with_l(mut self, l_ns: f64) -> Self {
        self.l = l_ns;
        self
    }

    /// Override the rendezvous threshold.
    pub fn with_s(mut self, s_bytes: u64) -> Self {
        self.s = s_bytes;
        self
    }

    /// Protocol used for a message of `bytes` (eager strictly below `S`).
    pub fn protocol(&self, bytes: u64) -> Protocol {
        if bytes < self.s {
            Protocol::Eager
        } else {
            Protocol::Rendezvous
        }
    }

    /// Serialisation time of the message body after its first byte:
    /// `(s−1)·G` (LogGP). Zero-byte messages cost nothing on the wire.
    pub fn transmission(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            0.0
        } else {
            (bytes.saturating_sub(1)) as f64 * self.big_g
        }
    }

    /// End-to-end delivery time of an eager message once it leaves the
    /// sender: `L + (s−1)·G`.
    pub fn eager_wire_time(&self, bytes: u64) -> f64 {
        self.l + self.transmission(bytes)
    }
}

impl Default for LogGPSParams {
    fn default() -> Self {
        Self::cscs_testbed(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_switch_at_threshold() {
        let p = LogGPSParams::cscs_testbed(2);
        assert_eq!(p.protocol(0), Protocol::Eager);
        assert_eq!(p.protocol(256 * 1024 - 1), Protocol::Eager);
        assert_eq!(p.protocol(256 * 1024), Protocol::Rendezvous);
    }

    #[test]
    fn transmission_cost() {
        let p = LogGPSParams::didactic();
        // 4-byte message at G = 5 ns/B: (4-1)*5 = 15 ns (paper Fig. 4b).
        assert_eq!(p.transmission(4), 15.0);
        assert_eq!(p.transmission(0), 0.0);
        assert_eq!(p.transmission(1), 0.0);
    }

    #[test]
    fn builders_override() {
        let p = LogGPSParams::cscs_testbed(128).with_o(6_000.0).with_l(10.0);
        assert_eq!(p.o, 6_000.0);
        assert_eq!(p.l, 10.0);
        assert_eq!(p.p, 128);
    }

    #[test]
    fn wire_time_composes() {
        let p = LogGPSParams::didactic().with_l(100.0);
        assert_eq!(p.eager_wire_time(4), 115.0);
    }
}

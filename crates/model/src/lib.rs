//! # llamp-model — network performance models
//!
//! The LogGPS family of models underpinning LLAMP:
//!
//! * [`params::LogGPSParams`] — the `L, o, g, G, O, S` parameter vector of
//!   the LogGOPS/LogGPS models (Culler et al., Alexandrov et al., Ino et
//!   al.), with the protocol-selection rule (eager below `S`, rendezvous at
//!   or above) and the cluster configurations the paper measured with
//!   Netgauge on the CSCS test-bed and Piz Daint.
//! * [`hloggp::HLogGP`] — the heterogeneous extension (Bosque et al.): `L`
//!   and `G` become `P×P` matrices so intra-node, intra-switch and
//!   inter-group links can differ (paper Appendix I).
//! * [`netgauge`] — parameter *measurement*: the PRTT(n, d, s) methodology
//!   of the Netgauge LogGP module, fitting `L`, `o`, `G` from round-trip
//!   experiments against any implementor of [`netgauge::Network`]. The
//!   simulator crate implements that trait, closing the loop the paper's
//!   §III-B describes (measure parameters, then feed them to the analysis).

pub mod hloggp;
pub mod netgauge;
pub mod params;

pub use hloggp::HLogGP;
pub use params::{LogGPSParams, Protocol};

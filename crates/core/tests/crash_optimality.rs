//! Property test for the longest-path crash basis (`llamp_core::crash`).
//!
//! The claim under test: on any execution DAG (all LogGPS costs are
//! nonnegative), the crash basis instantiated at the query point is
//! simultaneously primal feasible (each merge variable equals the max of
//! its in-edges) and dual feasible (the duals are 0/1 critical-subtree
//! indicators and every parameter multiplier is nonnegative) — so a cold
//! solve seeded from it performs **zero pivots**: no phase 1, no phase-2
//! exchanges, just the optimality pricing pass. And the objective it
//! certifies equals the forward longest-path evaluation.
//!
//! Random programs are generated as sequences of deadlock-free phases
//! (per-rank compute, allreduce, barrier, a rank chain), with compute
//! times drawn from a small integer grid so exact ties — the degenerate
//! case a longest-path crash mass-produces — occur constantly.

use llamp_core::{evaluate, Binding, CrashKind, GraphLp};
use llamp_model::LogGPSParams;
use llamp_schedgen::{build_graph, ExecGraph, GraphConfig};
use llamp_trace::{ProgramSet, TracerConfig};
use llamp_util::time::us;
use proptest::prelude::*;

/// One deadlock-free program phase.
#[derive(Debug, Clone)]
enum Phase {
    /// Per-rank compute; times indexed by rank (µs).
    Comp(Vec<u8>),
    /// Collective over all ranks.
    Allreduce(u16),
    Barrier,
    /// Rank `r` sends to `r+1` (eager-size payload).
    Chain(u16),
}

fn phase_strategy(ranks: usize) -> impl Strategy<Value = Phase> {
    prop_oneof![
        // Small integer grid (1..6 µs) so path lengths tie exactly.
        prop::collection::vec(1u8..6, ranks).prop_map(Phase::Comp),
        (64u16..4096).prop_map(Phase::Allreduce),
        Just(Phase::Barrier),
        (64u16..4096).prop_map(Phase::Chain),
    ]
}

fn program_strategy() -> impl Strategy<Value = (usize, Vec<Phase>)> {
    (2usize..=5).prop_flat_map(|ranks| {
        (
            Just(ranks),
            prop::collection::vec(phase_strategy(ranks), 1..8),
        )
    })
}

fn graph_of(ranks: usize, phases: &[Phase]) -> ExecGraph {
    let set = ProgramSet::spmd(ranks as u32, |rank, b| {
        for (tag, ph) in phases.iter().enumerate() {
            match ph {
                Phase::Comp(times) => {
                    b.comp(us(times[rank as usize] as f64));
                }
                Phase::Allreduce(bytes) => {
                    b.allreduce(*bytes as u64);
                }
                Phase::Barrier => {
                    b.barrier();
                }
                Phase::Chain(bytes) => {
                    if (rank as usize) + 1 < ranks {
                        b.send(rank + 1, *bytes as u64, tag as u32);
                    }
                    if rank > 0 {
                        b.recv(rank - 1, *bytes as u64, tag as u32);
                    }
                }
            }
        }
    });
    build_graph(&set.trace(&TracerConfig::default()), &GraphConfig::eager()).unwrap()
}

/// The assertion battery for one (graph, latency) pair.
fn assert_crash_is_optimal(g: &ExecGraph, binding: &Binding, l: f64) {
    let reduced = g.contracted();
    let mut lp = GraphLp::build_named(&reduced, binding, "sparse").unwrap();
    let p = lp.predict(l).expect("crash-seeded solve succeeds");
    let stats = lp.solver_stats();
    assert_eq!(
        stats.phase1_iterations, 0,
        "L={l}: crash basis not primal feasible"
    );
    assert_eq!(
        stats.pivots, 0,
        "L={l}: crash basis not optimal ({} pivots)",
        stats.pivots
    );
    // The certified objective is the forward longest-path evaluation.
    let e = evaluate(&reduced, binding, l);
    assert!(
        (p.runtime - e.runtime).abs() <= 1e-9 * (1.0 + e.runtime),
        "L={l}: lp {} vs eval {}",
        p.runtime,
        e.runtime
    );
    // The historic topological heuristic reaches the same optimum (in
    // however many pivots it needs).
    let mut topo = GraphLp::build_named(&reduced, binding, "sparse").unwrap();
    topo.set_crash_kind(CrashKind::Topological);
    let q = topo.predict(l).expect("heuristic-seeded solve succeeds");
    assert!(
        (p.runtime - q.runtime).abs() <= 1e-9 * (1.0 + p.runtime),
        "L={l}: crash kinds disagree: {} vs {}",
        p.runtime,
        q.runtime
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn longest_path_crash_solves_without_pivots((ranks, phases) in program_strategy()) {
        let g = graph_of(ranks, &phases);
        let binding = Binding::uniform(&LogGPSParams::didactic());
        for l in [0.0, 385.0, us(1.0), us(20.0)] {
            assert_crash_is_optimal(&g, &binding, l);
        }
    }
}

/// Regression seeds: tie-heavy shapes where every rank's path has the
/// same length, so the longest-path max ties across all in-edges of
/// every merge vertex.
#[test]
fn degenerate_tie_graphs_still_need_no_pivots() {
    let binding = Binding::uniform(&LogGPSParams::didactic());
    // Uniform compute + allreduce: all 2·ranks in-edges of each merge tie.
    for ranks in [2, 4, 8] {
        let g = graph_of(
            ranks,
            &[
                Phase::Comp(vec![3; ranks]),
                Phase::Allreduce(512),
                Phase::Comp(vec![1; ranks]),
                Phase::Barrier,
            ],
        );
        for l in [0.0, us(5.0)] {
            assert_crash_is_optimal(&g, &binding, l);
        }
    }
    // Zero-cost compute: every potential is identical (maximal ties).
    let g = graph_of(4, &[Phase::Comp(vec![0; 4]), Phase::Barrier]);
    assert_crash_is_optimal(&g, &binding, 0.0);
}

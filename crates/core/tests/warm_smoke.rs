//! Warm-vs-cold smoke assertion, run explicitly in CI (`cargo test ...
//! -- --ignored`): a warm-started 64-point latency sweep must not be
//! slower than the same sweep with the backend reset (cold) before every
//! point. Warm sweeps re-use the previous optimal basis — usually a
//! pivot-free re-extraction — so anything short of a clear win means the
//! warm-start path regressed.

use llamp_core::{Analyzer, GraphLp};
use llamp_model::LogGPSParams;
use llamp_schedgen::{build_graph, GraphConfig};
use llamp_trace::{ProgramSet, TracerConfig};
use llamp_util::time::us;
use std::time::Instant;

fn sweep_time(lp: &mut GraphLp, deltas: &[f64], cold: bool) -> f64 {
    let start = Instant::now();
    for &d in deltas {
        if cold {
            lp.reset_backend();
        }
        lp.predict(d).expect("solve succeeds");
    }
    start.elapsed().as_secs_f64()
}

#[test]
#[ignore = "timing assertion; CI runs it explicitly"]
fn warm_sweep_not_slower_than_cold() {
    // A bulk-synchronous proxy: per-iteration compute, halo exchange with
    // both neighbours, then a global reduction — big enough that a cold
    // solve costs real pivots.
    let ranks = 8u32;
    let set = ProgramSet::spmd(ranks, |rank, b| {
        for it in 0..12 {
            b.comp(us(20.0) * ((rank + it) % 3 + 1) as f64);
            let left = (rank + ranks - 1) % ranks;
            let right = (rank + 1) % ranks;
            let reqs = vec![
                b.isend(left, 2048, 1),
                b.isend(right, 2048, 2),
                b.irecv(right, 2048, 1),
                b.irecv(left, 2048, 2),
            ];
            b.waitall(reqs);
            b.allreduce(64);
        }
    });
    let graph = build_graph(&set.trace(&TracerConfig::default()), &GraphConfig::paper())
        .expect("workload builds");
    let params = LogGPSParams::cscs_testbed(8).with_o(us(6.1));
    let analyzer = Analyzer::new(&graph, &params);
    let deltas: Vec<f64> = (0..64).map(|i| us(1.0) * i as f64).collect();

    // One throwaway pass to warm caches/allocator before timing.
    let mut lp = analyzer.lp_named("sparse").unwrap();
    sweep_time(&mut lp, &deltas, false);

    let mut cold_lp = analyzer.lp_named("sparse").unwrap();
    let cold = sweep_time(&mut cold_lp, &deltas, true);
    let mut warm_lp = analyzer.lp_named("parametric").unwrap();
    let warm = sweep_time(&mut warm_lp, &deltas, false);

    println!(
        "cold sweep: {cold:.3}s, warm sweep: {warm:.3}s ({:.1}x)",
        cold / warm
    );
    assert!(
        warm <= cold,
        "warm sweep ({warm:.3}s) slower than cold ({cold:.3}s)"
    );
}

//! Binding symbolic graph costs to concrete (or decision-variable) network
//! parameters.
//!
//! Execution graphs carry symbolic [`CostExpr`]s. An analysis *binds* them:
//! `o` and `G` become constants, while the latency term becomes either
//!
//! * the scalar decision variable `l` (the paper's main analysis),
//! * a per-wire variable: each `L` traversal between ranks `i` and `j`
//!   expands to `wires(i,j)·l_wire + switches(i,j)·d_switch`
//!   (topology analysis, §IV-2), optionally per wire *class*
//!   (Appendix H / Fig. 19),
//! * a per-pair constant from an [`HLogGP`](llamp_model::HLogGP) matrix (process placement,
//!   Appendix I), with the pairwise sensitivities read off the critical
//!   path.
//!
//! The binding reduces every latency traversal to the affine form
//! `multiplier · λ + constant`, where `λ` is the *analysis variable*. All
//! backends (LP, parametric envelope, plain evaluation) consume this form.

use llamp_schedgen::CostExpr;
use llamp_topo::{PathProfile, Topology, WireClass};

/// How one unit of `L` between two ranks maps onto the analysis variable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyTerm {
    /// Coefficient of the analysis variable per `L` traversal.
    pub multiplier: f64,
    /// Constant nanoseconds added per `L` traversal.
    pub constant: f64,
}

/// The latency model of an analysis.
#[derive(Debug, Clone)]
pub enum LatencyModel {
    /// Every traversal costs exactly the variable `l` (paper §II).
    Uniform,
    /// Topology-decomposed with a single wire variable: a traversal between
    /// ranks `i, j` costs `wires·l_wire + switches·d_switch` (§IV-2).
    Wire {
        /// Per rank pair `(i, j)`: total wires and switch count.
        profiles: PairTable<PathProfile>,
        /// Fixed switch traversal delay (ns).
        d_switch: f64,
    },
    /// Per-class wire analysis: one class is the variable, the other
    /// classes are fixed constants (Appendix H).
    WireClass {
        /// Per rank pair profiles.
        profiles: PairTable<PathProfile>,
        /// Fixed switch traversal delay (ns).
        d_switch: f64,
        /// The class under study.
        variable: WireClass,
        /// Fixed latencies for `[terminal, intra, inter]`; the variable
        /// class entry is ignored.
        fixed: [f64; 3],
    },
    /// Heterogeneous per-pair constants (placement analysis): the variable
    /// is unused; `multiplier = 0`, `constant = L_{i,j}`.
    PairwiseConstant {
        /// Per rank pair latency (ns).
        latencies: PairTable<f64>,
    },
}

/// Dense symmetric table indexed by rank pairs.
#[derive(Debug, Clone)]
pub struct PairTable<T> {
    n: usize,
    data: Vec<T>,
}

impl<T: Copy> PairTable<T> {
    /// Build from a function of `(i, j)`.
    pub fn from_fn(n: u32, mut f: impl FnMut(u32, u32) -> T) -> Self {
        let n = n as usize;
        let mut data = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                data.push(f(i as u32, j as u32));
            }
        }
        Self { n, data }
    }

    /// Look up a pair.
    #[inline]
    pub fn get(&self, i: u32, j: u32) -> T {
        self.data[i as usize * self.n + j as usize]
    }
}

/// Which LogGPS parameter plays the decision variable (paper §II-B1 /
/// Eq. 4 generalise the analysis beyond `L`; §VI names `G` explicitly).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AnalysisVariable {
    /// The network latency `L` — the paper's main analysis.
    Latency,
    /// The per-byte gap `G` (inverse bandwidth); `L` is frozen at the
    /// given value. The sensitivity `λ_G` then counts bytes on the
    /// critical path (Eq. 4).
    BandwidthG {
        /// The fixed network latency while `G` varies (ns).
        fixed_l: f64,
    },
    /// The per-message CPU overhead `o`; `L` is frozen at the given
    /// value. The sensitivity `λ_o` counts message overheads on the
    /// critical path (the Eq. 4 generalisation for `o`).
    OverheadO {
        /// The fixed network latency while `o` varies (ns).
        fixed_l: f64,
    },
}

/// A LogGPS parameter usable as a sweep axis in multi-parameter analyses
/// (the `L × G × o` campaign grids). Ordering is the canonical axis order
/// `L < G < o`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SweepParam {
    /// The network latency `L` (ns) — or the per-wire latency under a
    /// topology binding.
    L,
    /// The per-byte gap `G` (ns/byte, inverse bandwidth).
    G,
    /// The per-message CPU overhead `o` (ns).
    O,
}

impl SweepParam {
    /// All sweepable parameters in canonical axis order.
    pub const ALL: [SweepParam; 3] = [SweepParam::L, SweepParam::G, SweepParam::O];

    /// Canonical spec-file name (`"L"`, `"G"`, `"o"`).
    pub fn name(&self) -> &'static str {
        match self {
            SweepParam::L => "L",
            SweepParam::G => "G",
            SweepParam::O => "o",
        }
    }

    /// Parse a spec-file name: `L`/`l`/`latency`, `G`/`bandwidth`,
    /// `o`/`O`/`overhead` (long names case-insensitive). A bare
    /// lowercase `g` is rejected on purpose — in LogGPS notation it is
    /// the per-message gap, a different (non-sweepable) parameter, while
    /// `o`/`O` are unambiguous.
    pub fn parse(name: &str) -> Option<SweepParam> {
        match name {
            "L" | "l" => Some(SweepParam::L),
            "G" => Some(SweepParam::G),
            "o" | "O" => Some(SweepParam::O),
            _ => match name.to_ascii_lowercase().as_str() {
                "latency" => Some(SweepParam::L),
                // No "gap" alias: it would collide with the LogGPS
                // per-message gap `g` this parser rejects.
                "bandwidth" => Some(SweepParam::G),
                "overhead" => Some(SweepParam::O),
                _ => None,
            },
        }
    }
}

impl std::fmt::Display for SweepParam {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A cost bound in **all three** sweepable parameters at once: the affine
/// form `constant + l·L + g·G + o·o`. This is what the multi-parameter
/// LP and evaluator consume — unlike [`Binding::bind`], nothing is baked
/// to a constant, so one bound answers any `(L, G, o)` query point.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MultiBound {
    /// Constant nanoseconds (compute, switch traversals, per-pair fixed
    /// latencies).
    pub constant: f64,
    /// Coefficient of the latency axis (`L` traversals × the latency
    /// model's per-traversal multiplier).
    pub l: f64,
    /// Coefficient of the per-byte gap `G` (bytes on the wire).
    pub g: f64,
    /// Coefficient of the per-message overhead `o` (overhead count).
    pub o: f64,
}

impl MultiBound {
    /// Evaluate at a concrete `(L, G, o)` point.
    #[inline]
    pub fn eval(&self, l: f64, g: f64, o: f64) -> f64 {
        self.constant + self.l * l + self.g * g + self.o * o
    }

    /// Coefficient of one sweep parameter.
    #[inline]
    pub fn coeff(&self, p: SweepParam) -> f64 {
        match p {
            SweepParam::L => self.l,
            SweepParam::G => self.g,
            SweepParam::O => self.o,
        }
    }
}

/// A complete binding: scalar parameters plus the latency model.
#[derive(Debug, Clone)]
pub struct Binding {
    /// Per-message CPU overhead `o` (ns).
    pub o: f64,
    /// Per-byte gap `G` (ns/byte); the constant value when `L` is the
    /// analysis variable, unused as a constant when `G` itself varies.
    pub big_g: f64,
    /// Latency model.
    pub latency: LatencyModel,
    /// Which parameter is the decision variable.
    pub variable: AnalysisVariable,
}

impl Binding {
    /// Uniform binding from LogGPS parameters (the latency value itself is
    /// supplied per query, not stored here).
    pub fn uniform(params: &llamp_model::LogGPSParams) -> Self {
        Self {
            o: params.o,
            big_g: params.big_g,
            latency: LatencyModel::Uniform,
            variable: AnalysisVariable::Latency,
        }
    }

    /// Bandwidth-sensitivity binding (paper Eq. 4 / §VI): `G` becomes the
    /// analysis variable, `L` stays fixed at `params.l`. Every query's
    /// variable value is then a per-byte gap in ns/byte, `λ` becomes
    /// `λ_G ≈` bytes on the critical path, and tolerances answer "how slow
    /// may the network's per-byte rate get".
    pub fn bandwidth(params: &llamp_model::LogGPSParams) -> Self {
        Self {
            o: params.o,
            big_g: params.big_g,
            latency: LatencyModel::Uniform,
            variable: AnalysisVariable::BandwidthG { fixed_l: params.l },
        }
    }

    /// Overhead-sensitivity binding (the Eq. 4 generalisation for `o`):
    /// the per-message CPU overhead becomes the analysis variable, `L`
    /// stays fixed at `params.l`. Every query's variable value is then an
    /// overhead in ns, `λ` becomes `λ_o ≈` message overheads on the
    /// critical path, and tolerances answer "how slow may the MPI stack's
    /// per-message processing get".
    pub fn overhead(params: &llamp_model::LogGPSParams) -> Self {
        Self {
            o: params.o,
            big_g: params.big_g,
            latency: LatencyModel::Uniform,
            variable: AnalysisVariable::OverheadO { fixed_l: params.l },
        }
    }

    /// Topology binding with a single `l_wire` variable. `placement[r]` is
    /// the physical node of rank `r`.
    pub fn wire<T: Topology>(
        params: &llamp_model::LogGPSParams,
        topo: &T,
        placement: &[u32],
        d_switch: f64,
    ) -> Self {
        let n = placement.len() as u32;
        let profiles = PairTable::from_fn(n, |i, j| {
            topo.profile(placement[i as usize], placement[j as usize])
        });
        Self {
            o: params.o,
            big_g: params.big_g,
            latency: LatencyModel::Wire { profiles, d_switch },
            variable: AnalysisVariable::Latency,
        }
    }

    /// Per-class topology binding (Appendix H): `variable` is the class
    /// under study, `fixed` holds the constant latencies of the others.
    pub fn wire_class<T: Topology>(
        params: &llamp_model::LogGPSParams,
        topo: &T,
        placement: &[u32],
        d_switch: f64,
        variable: WireClass,
        fixed: [f64; 3],
    ) -> Self {
        let n = placement.len() as u32;
        let profiles = PairTable::from_fn(n, |i, j| {
            topo.profile(placement[i as usize], placement[j as usize])
        });
        Self {
            o: params.o,
            big_g: params.big_g,
            latency: LatencyModel::WireClass {
                profiles,
                d_switch,
                variable,
                fixed,
            },
            variable: AnalysisVariable::Latency,
        }
    }

    /// Heterogeneous per-pair binding from an HLogGP matrix and a
    /// placement.
    pub fn hloggp(h: &llamp_model::HLogGP, placement: &[u32]) -> Self {
        let n = placement.len() as u32;
        let latencies =
            PairTable::from_fn(n, |i, j| h.l(placement[i as usize], placement[j as usize]));
        Self {
            o: h.base.o,
            big_g: h.base.big_g,
            latency: LatencyModel::PairwiseConstant { latencies },
            variable: AnalysisVariable::Latency,
        }
    }

    /// The affine latency term for one `L` traversal between two ranks.
    #[inline]
    pub fn latency_term(&self, src: u32, dst: u32) -> LatencyTerm {
        match &self.latency {
            LatencyModel::Uniform => LatencyTerm {
                multiplier: 1.0,
                constant: 0.0,
            },
            LatencyModel::Wire { profiles, d_switch } => {
                let p = profiles.get(src, dst);
                LatencyTerm {
                    multiplier: p.total_wires() as f64,
                    constant: p.switches as f64 * d_switch,
                }
            }
            LatencyModel::WireClass {
                profiles,
                d_switch,
                variable,
                fixed,
            } => {
                let p = profiles.get(src, dst);
                let vi = class_index(*variable);
                let mut constant = p.switches as f64 * d_switch;
                for (c, fix) in fixed.iter().enumerate() {
                    if c != vi {
                        constant += p.wires[c] as f64 * fix;
                    }
                }
                LatencyTerm {
                    multiplier: p.wires[vi] as f64,
                    constant,
                }
            }
            LatencyModel::PairwiseConstant { latencies } => LatencyTerm {
                multiplier: 0.0,
                constant: latencies.get(src, dst),
            },
        }
    }

    /// Bind a symbolic cost on an edge between `src` and `dst` ranks,
    /// returning `(constant, variable multiplier)` — the single-variable
    /// projection of [`Binding::bind_multi`] (see [`Binding::project`]).
    #[inline]
    pub fn bind(&self, cost: &CostExpr, src: u32, dst: u32) -> (f64, f64) {
        self.project(self.bind_multi(cost, src, dst))
    }

    /// Project a fully symbolic [`MultiBound`] onto the single analysis
    /// variable: the two non-variable parameters are baked into the
    /// constant (`G`/`o` from the binding, `L` from the frozen
    /// `fixed_l`), and the variable's coefficient survives. This is the
    /// one place the [`AnalysisVariable`] selection is interpreted — the
    /// graph-lowering walk binds everything through `bind_multi` and the
    /// single-parameter builders project.
    #[inline]
    pub fn project(&self, mb: MultiBound) -> (f64, f64) {
        match self.variable {
            AnalysisVariable::Latency => (mb.constant + mb.g * self.big_g + mb.o * self.o, mb.l),
            AnalysisVariable::BandwidthG { fixed_l } => {
                (mb.constant + mb.l * fixed_l + mb.o * self.o, mb.g)
            }
            AnalysisVariable::OverheadO { fixed_l } => {
                (mb.constant + mb.l * fixed_l + mb.g * self.big_g, mb.o)
            }
        }
    }

    /// Bind a symbolic cost in **all three** sweep parameters at once:
    /// nothing is frozen to a constant except the latency model's
    /// structural terms (switch delays, per-pair fixed latencies). The
    /// result answers any `(L, G, o)` point, which is what the
    /// multi-parameter LP ([`crate::multi_lp::GraphMultiLp`]) and
    /// [`crate::eval::evaluate_multi`] are built from. The
    /// [`AnalysisVariable`] selection is irrelevant here — all three
    /// parameters stay symbolic.
    #[inline]
    pub fn bind_multi(&self, cost: &CostExpr, src: u32, dst: u32) -> MultiBound {
        let mut out = MultiBound {
            constant: cost.const_ns,
            l: 0.0,
            g: cost.gbytes,
            o: cost.o_count,
        };
        if cost.l_count != 0.0 {
            let term = self.latency_term(src, dst);
            out.constant += cost.l_count * term.constant;
            out.l = cost.l_count * term.multiplier;
        }
        out
    }

    /// The binding's base value of one sweep parameter: what the
    /// campaign's delta axes are relative to. `base_l` is supplied by the
    /// caller (the latency base lives outside the binding — e.g. the
    /// analyzer's wire latency), `G` and `o` come from the bound
    /// constants.
    pub fn base_value(&self, p: SweepParam, base_l: f64) -> f64 {
        match p {
            SweepParam::L => base_l,
            SweepParam::G => self.big_g,
            SweepParam::O => self.o,
        }
    }
}

fn class_index(c: WireClass) -> usize {
    match c {
        WireClass::Terminal => 0,
        WireClass::Intra => 1,
        WireClass::Inter => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llamp_model::LogGPSParams;
    use llamp_topo::FatTree;

    #[test]
    fn uniform_binding_passthrough() {
        let b = Binding::uniform(&LogGPSParams::didactic());
        let cost = CostExpr::wire(4); // L + 3G with G = 5
        let (c, m) = b.bind(&cost, 0, 1);
        assert_eq!(c, 15.0);
        assert_eq!(m, 1.0);
    }

    #[test]
    fn wire_binding_expands_hops() {
        let ft = FatTree::new(4);
        let placement: Vec<u32> = (0..4).collect();
        let params = LogGPSParams::didactic();
        let b = Binding::wire(&params, &ft, &placement, 108.0);
        // Ranks 0 and 1 share an edge switch (k=4: 2 hosts/edge): 2 wires,
        // 1 switch.
        let cost = CostExpr::wire(1);
        let (c, m) = b.bind(&cost, 0, 1);
        assert_eq!(m, 2.0);
        assert_eq!(c, 108.0);
        // Ranks 0 and 2: different edge switches, same pod: 4 wires, 3
        // switches.
        let (c, m) = b.bind(&cost, 0, 2);
        assert_eq!(m, 4.0);
        assert_eq!(c, 3.0 * 108.0);
    }

    #[test]
    fn wire_class_binding_fixes_other_classes() {
        let ft = FatTree::new(4);
        let placement: Vec<u32> = (0..8).collect();
        let params = LogGPSParams::didactic();
        let b = Binding::wire_class(
            &params,
            &ft,
            &placement,
            100.0,
            WireClass::Inter,
            [274.0, 274.0, 0.0],
        );
        // Cross-pod pair (k=4: pods of 4 hosts): wires [2,2,2], switches 5.
        let cost = CostExpr::wire(1);
        let (c, m) = b.bind(&cost, 0, 4);
        assert_eq!(m, 2.0); // two inter wires are the variable
        assert_eq!(c, 5.0 * 100.0 + 2.0 * 274.0 + 2.0 * 274.0);
    }

    #[test]
    fn pairwise_constant_binding() {
        let mut h = llamp_model::HLogGP::uniform(LogGPSParams::didactic().with_l(500.0));
        h.set_l(0, 1, 123.0);
        let placement: Vec<u32> = vec![0, 1];
        let b = Binding::hloggp(&h, &placement);
        let cost = CostExpr::wire(1);
        let (c, m) = b.bind(&cost, 0, 1);
        assert_eq!(m, 0.0);
        assert_eq!(c, 123.0);
    }

    #[test]
    fn rendezvous_multiplies_latency_terms() {
        // A rendezvous completion edge has l_count = 3.
        let b = Binding::uniform(&LogGPSParams::didactic());
        let cost = CostExpr {
            o_count: 3.0,
            l_count: 3.0,
            gbytes: 10.0,
            const_ns: 0.0,
        };
        let (c, m) = b.bind(&cost, 0, 1);
        assert_eq!(m, 3.0);
        assert_eq!(c, 50.0); // 3o (o=0) + 10 G (G=5)
    }
}

//! Binding symbolic graph costs to concrete (or decision-variable) network
//! parameters.
//!
//! Execution graphs carry symbolic [`CostExpr`]s. An analysis *binds* them:
//! `o` and `G` become constants, while the latency term becomes either
//!
//! * the scalar decision variable `l` (the paper's main analysis),
//! * a per-wire variable: each `L` traversal between ranks `i` and `j`
//!   expands to `wires(i,j)·l_wire + switches(i,j)·d_switch`
//!   (topology analysis, §IV-2), optionally per wire *class*
//!   (Appendix H / Fig. 19),
//! * a per-pair constant from an [`HLogGP`](llamp_model::HLogGP) matrix (process placement,
//!   Appendix I), with the pairwise sensitivities read off the critical
//!   path.
//!
//! The binding reduces every latency traversal to the affine form
//! `multiplier · λ + constant`, where `λ` is the *analysis variable*. All
//! backends (LP, parametric envelope, plain evaluation) consume this form.

use llamp_schedgen::CostExpr;
use llamp_topo::{PathProfile, Topology, WireClass};

/// How one unit of `L` between two ranks maps onto the analysis variable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyTerm {
    /// Coefficient of the analysis variable per `L` traversal.
    pub multiplier: f64,
    /// Constant nanoseconds added per `L` traversal.
    pub constant: f64,
}

/// The latency model of an analysis.
#[derive(Debug, Clone)]
pub enum LatencyModel {
    /// Every traversal costs exactly the variable `l` (paper §II).
    Uniform,
    /// Topology-decomposed with a single wire variable: a traversal between
    /// ranks `i, j` costs `wires·l_wire + switches·d_switch` (§IV-2).
    Wire {
        /// Per rank pair `(i, j)`: total wires and switch count.
        profiles: PairTable<PathProfile>,
        /// Fixed switch traversal delay (ns).
        d_switch: f64,
    },
    /// Per-class wire analysis: one class is the variable, the other
    /// classes are fixed constants (Appendix H).
    WireClass {
        /// Per rank pair profiles.
        profiles: PairTable<PathProfile>,
        /// Fixed switch traversal delay (ns).
        d_switch: f64,
        /// The class under study.
        variable: WireClass,
        /// Fixed latencies for `[terminal, intra, inter]`; the variable
        /// class entry is ignored.
        fixed: [f64; 3],
    },
    /// Heterogeneous per-pair constants (placement analysis): the variable
    /// is unused; `multiplier = 0`, `constant = L_{i,j}`.
    PairwiseConstant {
        /// Per rank pair latency (ns).
        latencies: PairTable<f64>,
    },
}

/// Dense symmetric table indexed by rank pairs.
#[derive(Debug, Clone)]
pub struct PairTable<T> {
    n: usize,
    data: Vec<T>,
}

impl<T: Copy> PairTable<T> {
    /// Build from a function of `(i, j)`.
    pub fn from_fn(n: u32, mut f: impl FnMut(u32, u32) -> T) -> Self {
        let n = n as usize;
        let mut data = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                data.push(f(i as u32, j as u32));
            }
        }
        Self { n, data }
    }

    /// Look up a pair.
    #[inline]
    pub fn get(&self, i: u32, j: u32) -> T {
        self.data[i as usize * self.n + j as usize]
    }
}

/// Which LogGPS parameter plays the decision variable (paper §II-B1 /
/// Eq. 4 generalise the analysis beyond `L`; §VI names `G` explicitly).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AnalysisVariable {
    /// The network latency `L` — the paper's main analysis.
    Latency,
    /// The per-byte gap `G` (inverse bandwidth); `L` is frozen at the
    /// given value. The sensitivity `λ_G` then counts bytes on the
    /// critical path (Eq. 4).
    BandwidthG {
        /// The fixed network latency while `G` varies (ns).
        fixed_l: f64,
    },
}

/// A complete binding: scalar parameters plus the latency model.
#[derive(Debug, Clone)]
pub struct Binding {
    /// Per-message CPU overhead `o` (ns).
    pub o: f64,
    /// Per-byte gap `G` (ns/byte); the constant value when `L` is the
    /// analysis variable, unused as a constant when `G` itself varies.
    pub big_g: f64,
    /// Latency model.
    pub latency: LatencyModel,
    /// Which parameter is the decision variable.
    pub variable: AnalysisVariable,
}

impl Binding {
    /// Uniform binding from LogGPS parameters (the latency value itself is
    /// supplied per query, not stored here).
    pub fn uniform(params: &llamp_model::LogGPSParams) -> Self {
        Self {
            o: params.o,
            big_g: params.big_g,
            latency: LatencyModel::Uniform,
            variable: AnalysisVariable::Latency,
        }
    }

    /// Bandwidth-sensitivity binding (paper Eq. 4 / §VI): `G` becomes the
    /// analysis variable, `L` stays fixed at `params.l`. Every query's
    /// variable value is then a per-byte gap in ns/byte, `λ` becomes
    /// `λ_G ≈` bytes on the critical path, and tolerances answer "how slow
    /// may the network's per-byte rate get".
    pub fn bandwidth(params: &llamp_model::LogGPSParams) -> Self {
        Self {
            o: params.o,
            big_g: params.big_g,
            latency: LatencyModel::Uniform,
            variable: AnalysisVariable::BandwidthG { fixed_l: params.l },
        }
    }

    /// Topology binding with a single `l_wire` variable. `placement[r]` is
    /// the physical node of rank `r`.
    pub fn wire<T: Topology>(
        params: &llamp_model::LogGPSParams,
        topo: &T,
        placement: &[u32],
        d_switch: f64,
    ) -> Self {
        let n = placement.len() as u32;
        let profiles = PairTable::from_fn(n, |i, j| {
            topo.profile(placement[i as usize], placement[j as usize])
        });
        Self {
            o: params.o,
            big_g: params.big_g,
            latency: LatencyModel::Wire { profiles, d_switch },
            variable: AnalysisVariable::Latency,
        }
    }

    /// Per-class topology binding (Appendix H): `variable` is the class
    /// under study, `fixed` holds the constant latencies of the others.
    pub fn wire_class<T: Topology>(
        params: &llamp_model::LogGPSParams,
        topo: &T,
        placement: &[u32],
        d_switch: f64,
        variable: WireClass,
        fixed: [f64; 3],
    ) -> Self {
        let n = placement.len() as u32;
        let profiles = PairTable::from_fn(n, |i, j| {
            topo.profile(placement[i as usize], placement[j as usize])
        });
        Self {
            o: params.o,
            big_g: params.big_g,
            latency: LatencyModel::WireClass {
                profiles,
                d_switch,
                variable,
                fixed,
            },
            variable: AnalysisVariable::Latency,
        }
    }

    /// Heterogeneous per-pair binding from an HLogGP matrix and a
    /// placement.
    pub fn hloggp(h: &llamp_model::HLogGP, placement: &[u32]) -> Self {
        let n = placement.len() as u32;
        let latencies =
            PairTable::from_fn(n, |i, j| h.l(placement[i as usize], placement[j as usize]));
        Self {
            o: h.base.o,
            big_g: h.base.big_g,
            latency: LatencyModel::PairwiseConstant { latencies },
            variable: AnalysisVariable::Latency,
        }
    }

    /// The affine latency term for one `L` traversal between two ranks.
    #[inline]
    pub fn latency_term(&self, src: u32, dst: u32) -> LatencyTerm {
        match &self.latency {
            LatencyModel::Uniform => LatencyTerm {
                multiplier: 1.0,
                constant: 0.0,
            },
            LatencyModel::Wire { profiles, d_switch } => {
                let p = profiles.get(src, dst);
                LatencyTerm {
                    multiplier: p.total_wires() as f64,
                    constant: p.switches as f64 * d_switch,
                }
            }
            LatencyModel::WireClass {
                profiles,
                d_switch,
                variable,
                fixed,
            } => {
                let p = profiles.get(src, dst);
                let vi = class_index(*variable);
                let mut constant = p.switches as f64 * d_switch;
                for (c, fix) in fixed.iter().enumerate() {
                    if c != vi {
                        constant += p.wires[c] as f64 * fix;
                    }
                }
                LatencyTerm {
                    multiplier: p.wires[vi] as f64,
                    constant,
                }
            }
            LatencyModel::PairwiseConstant { latencies } => LatencyTerm {
                multiplier: 0.0,
                constant: latencies.get(src, dst),
            },
        }
    }

    /// Bind a symbolic cost on an edge between `src` and `dst` ranks,
    /// returning `(constant, variable multiplier)`.
    #[inline]
    pub fn bind(&self, cost: &CostExpr, src: u32, dst: u32) -> (f64, f64) {
        match self.variable {
            AnalysisVariable::Latency => {
                let (mut constant, l_count) = cost.eval_without_l(self.o, self.big_g);
                if l_count == 0.0 {
                    return (constant, 0.0);
                }
                let term = self.latency_term(src, dst);
                constant += l_count * term.constant;
                (constant, l_count * term.multiplier)
            }
            AnalysisVariable::BandwidthG { fixed_l } => {
                // G is the variable: its coefficient is the byte count;
                // the latency contribution becomes a constant.
                let mut constant = cost.const_ns + cost.o_count * self.o;
                if cost.l_count != 0.0 {
                    let term = self.latency_term(src, dst);
                    constant += cost.l_count * (term.multiplier * fixed_l + term.constant);
                }
                (constant, cost.gbytes)
            }
        }
    }
}

fn class_index(c: WireClass) -> usize {
    match c {
        WireClass::Terminal => 0,
        WireClass::Intra => 1,
        WireClass::Inter => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llamp_model::LogGPSParams;
    use llamp_topo::FatTree;

    #[test]
    fn uniform_binding_passthrough() {
        let b = Binding::uniform(&LogGPSParams::didactic());
        let cost = CostExpr::wire(4); // L + 3G with G = 5
        let (c, m) = b.bind(&cost, 0, 1);
        assert_eq!(c, 15.0);
        assert_eq!(m, 1.0);
    }

    #[test]
    fn wire_binding_expands_hops() {
        let ft = FatTree::new(4);
        let placement: Vec<u32> = (0..4).collect();
        let params = LogGPSParams::didactic();
        let b = Binding::wire(&params, &ft, &placement, 108.0);
        // Ranks 0 and 1 share an edge switch (k=4: 2 hosts/edge): 2 wires,
        // 1 switch.
        let cost = CostExpr::wire(1);
        let (c, m) = b.bind(&cost, 0, 1);
        assert_eq!(m, 2.0);
        assert_eq!(c, 108.0);
        // Ranks 0 and 2: different edge switches, same pod: 4 wires, 3
        // switches.
        let (c, m) = b.bind(&cost, 0, 2);
        assert_eq!(m, 4.0);
        assert_eq!(c, 3.0 * 108.0);
    }

    #[test]
    fn wire_class_binding_fixes_other_classes() {
        let ft = FatTree::new(4);
        let placement: Vec<u32> = (0..8).collect();
        let params = LogGPSParams::didactic();
        let b = Binding::wire_class(
            &params,
            &ft,
            &placement,
            100.0,
            WireClass::Inter,
            [274.0, 274.0, 0.0],
        );
        // Cross-pod pair (k=4: pods of 4 hosts): wires [2,2,2], switches 5.
        let cost = CostExpr::wire(1);
        let (c, m) = b.bind(&cost, 0, 4);
        assert_eq!(m, 2.0); // two inter wires are the variable
        assert_eq!(c, 5.0 * 100.0 + 2.0 * 274.0 + 2.0 * 274.0);
    }

    #[test]
    fn pairwise_constant_binding() {
        let mut h = llamp_model::HLogGP::uniform(LogGPSParams::didactic().with_l(500.0));
        h.set_l(0, 1, 123.0);
        let placement: Vec<u32> = vec![0, 1];
        let b = Binding::hloggp(&h, &placement);
        let cost = CostExpr::wire(1);
        let (c, m) = b.bind(&cost, 0, 1);
        assert_eq!(m, 0.0);
        assert_eq!(c, 123.0);
    }

    #[test]
    fn rendezvous_multiplies_latency_terms() {
        // A rendezvous completion edge has l_count = 3.
        let b = Binding::uniform(&LogGPSParams::didactic());
        let cost = CostExpr {
            o_count: 3.0,
            l_count: 3.0,
            gbytes: 10.0,
            const_ns: 0.0,
        };
        let (c, m) = b.bind(&cost, 0, 1);
        assert_eq!(m, 3.0);
        assert_eq!(c, 50.0); // 3o (o=0) + 10 G (G=5)
    }
}

//! Direct graph evaluation: longest path under a bound configuration.
//!
//! This is the "first conventional approach" of §II-C — two traversals,
//! `O(|V| + |E|)` — kept for three purposes: cross-validating the LP and
//! parametric backends, extracting the critical path itself (the LP only
//! reports which constraints are tight), and accumulating the *pairwise*
//! sensitivity matrices the placement algorithm needs (Appendix I:
//! `λ_L^{i,j}` counts messages between ranks `i` and `j` on the critical
//! path, `λ_G^{i,j}` counts their bytes).

use crate::binding::Binding;
use crate::lowering::lower_walk;
use llamp_schedgen::{EdgeKind, GraphView};

/// Tie tolerance when choosing among equal-cost predecessor paths: prefer
/// the path with the larger latency coefficient, which matches the LP's
/// right-derivative at the evaluation point.
const TIE_EPS: f64 = 1e-9;

/// Result of a single evaluation.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// Predicted runtime `T` (ns) at the given variable value.
    pub runtime: f64,
    /// Latency sensitivity `λ = ∂T/∂λ_var`: the summed variable
    /// multipliers along the critical path.
    pub lambda: f64,
    /// Per-vertex completion times.
    pub finish: Vec<f64>,
    /// One critical path, source → sink, as vertex ids.
    pub critical_path: Vec<u32>,
}

impl Evaluation {
    /// The latency ratio `ρ = (λ·λ_value)/T`: the fraction of the critical
    /// path spent waiting on the studied latency (§II-D1; the prose
    /// defines the reciprocal but every plot shows this fraction).
    pub fn rho(&self, lambda_value: f64) -> f64 {
        if self.runtime <= 0.0 {
            0.0
        } else {
            self.lambda * lambda_value / self.runtime
        }
    }
}

/// Evaluate the graph under `binding` with the analysis variable set to
/// `lambda_value` (for the uniform model: the network latency `L`).
/// Accepts any [`GraphView`] — raw or reduced graphs alike.
pub fn evaluate<V: GraphView + ?Sized>(g: &V, binding: &Binding, lambda_value: f64) -> Evaluation {
    let n = g.num_vertices();
    let mut finish = vec![0.0f64; n];
    // Slope (latency-coefficient sum) of the best path into each vertex,
    // used both for tie-breaking and to read λ at the sink.
    let mut slope = vec![0.0f64; n];
    let mut argmax: Vec<u32> = vec![u32::MAX; n];

    lower_walk(g, binding, |low| {
        let v = low.id;
        let (vc, vm) = binding.project(low.cost);
        let mut best_t = 0.0f64;
        let mut best_slope = 0.0f64;
        let mut best_pred = u32::MAX;
        for &(u, eb) in low.preds {
            let (ec, em) = binding.project(eb);
            let t = finish[u as usize] + ec + em * lambda_value;
            let s = slope[u as usize] + em;
            if t > best_t + TIE_EPS || (t > best_t - TIE_EPS && s > best_slope) {
                best_t = t;
                best_slope = s;
                best_pred = u;
            }
        }
        finish[v as usize] = best_t + vc + vm * lambda_value;
        slope[v as usize] = best_slope + vm;
        argmax[v as usize] = best_pred;
    });

    // Sink with the latest finish; same tie-break.
    let mut runtime = f64::NEG_INFINITY;
    let mut lambda = 0.0;
    let mut sink = u32::MAX;
    for v in 0..n as u32 {
        if g.succs(v).is_empty() {
            let t = finish[v as usize];
            let s = slope[v as usize];
            let better = sink == u32::MAX
                || t > runtime + TIE_EPS
                || ((t - runtime).abs() <= TIE_EPS && s > lambda);
            if better {
                runtime = t;
                lambda = s;
                sink = v;
            }
        }
    }
    if sink == u32::MAX {
        runtime = 0.0;
    }

    let mut critical_path = Vec::new();
    let mut cur = sink;
    while cur != u32::MAX {
        critical_path.push(cur);
        cur = argmax[cur as usize];
    }
    critical_path.reverse();

    Evaluation {
        runtime,
        lambda,
        finish,
        critical_path,
    }
}

/// Result of a multi-parameter evaluation: the makespan plus its full
/// gradient in the three sweepable LogGPS parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiEvaluation {
    /// Predicted runtime `T` (ns) at the query point.
    pub runtime: f64,
    /// Latency sensitivity `λ_L = ∂T/∂L` (traversals on the critical
    /// path, scaled by the latency model's multipliers).
    pub lambda_l: f64,
    /// Bandwidth sensitivity `λ_G = ∂T/∂G` (bytes on the critical path).
    pub lambda_g: f64,
    /// Overhead sensitivity `λ_o = ∂T/∂o` (message overheads on the
    /// critical path).
    pub lambda_o: f64,
}

impl MultiEvaluation {
    /// Sensitivity of one sweep parameter.
    pub fn lambda(&self, p: crate::binding::SweepParam) -> f64 {
        use crate::binding::SweepParam;
        match p {
            SweepParam::L => self.lambda_l,
            SweepParam::G => self.lambda_g,
            SweepParam::O => self.lambda_o,
        }
    }
}

/// Evaluate the graph at an arbitrary `(L, G, o)` point, tracking the full
/// sensitivity gradient along the critical path. Costs come from
/// [`Binding::bind_multi`], so nothing is baked to a constant: this is the
/// direct-evaluation counterpart of the multi-parameter LP, and the
/// reference the `λ_G` / `λ_o` dual certificates are checked against.
/// Ties between equal-cost paths prefer the larger `(λ_L, λ_G, λ_o)`
/// gradient lexicographically — the right-derivative at the query point,
/// matching the 1-D evaluator's slope tie-break.
pub fn evaluate_multi<V: GraphView + ?Sized>(
    g: &V,
    binding: &Binding,
    l: f64,
    gap: f64,
    o: f64,
) -> MultiEvaluation {
    let n = g.num_vertices();
    let mut finish = vec![0.0f64; n];
    // Per-vertex gradient of the best incoming path, for tie-breaking and
    // the sink read-out.
    let mut grad: Vec<[f64; 3]> = vec![[0.0; 3]; n];

    lower_walk(g, binding, |low| {
        let v = low.id;
        let vb = low.cost;
        let mut best_t = 0.0f64;
        let mut best_g = [0.0f64; 3];
        for &(u, eb) in low.preds {
            let t = finish[u as usize] + eb.eval(l, gap, o);
            let s = [
                grad[u as usize][0] + eb.l,
                grad[u as usize][1] + eb.g,
                grad[u as usize][2] + eb.o,
            ];
            if t > best_t + TIE_EPS || (t > best_t - TIE_EPS && s > best_g) {
                best_t = t;
                best_g = s;
            }
        }
        finish[v as usize] = best_t + vb.eval(l, gap, o);
        grad[v as usize] = [best_g[0] + vb.l, best_g[1] + vb.g, best_g[2] + vb.o];
    });

    let mut runtime = 0.0f64;
    let mut best = [0.0f64; 3];
    let mut found = false;
    for v in 0..n as u32 {
        if g.succs(v).is_empty() {
            let t = finish[v as usize];
            let s = grad[v as usize];
            let better =
                !found || t > runtime + TIE_EPS || ((t - runtime).abs() <= TIE_EPS && s > best);
            if better {
                runtime = t;
                best = s;
                found = true;
            }
        }
    }
    MultiEvaluation {
        runtime,
        lambda_l: best[0],
        lambda_g: best[1],
        lambda_o: best[2],
    }
}

/// Pairwise sensitivity matrices over ranks (Appendix I). `lambda[i·P+j]`
/// counts latency traversals between ranks `i` and `j` on the critical
/// path; `bytes[i·P+j]` sums the corresponding `G` coefficients. Both are
/// accumulated symmetrically.
#[derive(Debug, Clone)]
pub struct PairSensitivities {
    /// World size.
    pub nranks: u32,
    /// `λ_L^{i,j}` (messages on the critical path between the pair).
    pub lambda: Vec<f64>,
    /// `λ_G^{i,j}` (bytes on the critical path between the pair).
    pub bytes: Vec<f64>,
}

impl PairSensitivities {
    /// Look up `λ_L^{i,j}`.
    pub fn lambda_at(&self, i: u32, j: u32) -> f64 {
        self.lambda[(i * self.nranks + j) as usize]
    }

    /// Look up `λ_G^{i,j}`.
    pub fn bytes_at(&self, i: u32, j: u32) -> f64 {
        self.bytes[(i * self.nranks + j) as usize]
    }
}

/// Walk the critical path of an evaluation and accumulate the pairwise
/// sensitivity matrices. Works on any [`GraphView`]; to attribute a
/// *reduced* graph's critical path to original-graph entities instead,
/// lift it first (`ReducedGraph::lift_path`) and accumulate on the raw
/// graph.
pub fn pair_sensitivities<V: GraphView + ?Sized>(g: &V, eval: &Evaluation) -> PairSensitivities {
    let p = g.nranks();
    let mut lambda = vec![0.0; (p * p) as usize];
    let mut bytes = vec![0.0; (p * p) as usize];
    for w in eval.critical_path.windows(2) {
        let (u, v) = (w[0], w[1]);
        let edge = g
            .preds(v)
            .iter()
            .find(|e| e.other == u)
            .expect("critical path follows edges");
        if edge.cost.l_count == 0.0 && edge.cost.gbytes == 0.0 {
            continue;
        }
        let (a, b) = (g.vertex(u).rank, g.vertex(v).rank);
        if matches!(edge.kind, EdgeKind::Comm | EdgeKind::Rendezvous) && a != b {
            lambda[(a * p + b) as usize] += edge.cost.l_count;
            lambda[(b * p + a) as usize] += edge.cost.l_count;
            bytes[(a * p + b) as usize] += edge.cost.gbytes;
            bytes[(b * p + a) as usize] += edge.cost.gbytes;
        }
    }
    PairSensitivities {
        nranks: p,
        lambda,
        bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::Binding;
    use llamp_model::LogGPSParams;
    use llamp_schedgen::{build_graph, ExecGraph, GraphConfig};
    use llamp_trace::{ProgramSet, TracerConfig};
    use llamp_util::time::us;

    fn running_example(c0_us: f64) -> ExecGraph {
        let set = ProgramSet::spmd(2, |rank, b| {
            if rank == 0 {
                b.comp(us(c0_us));
                b.send(1, 4, 0);
                b.comp(us(1.0));
            } else {
                b.comp(us(0.5));
                b.recv(0, 4, 0);
                b.comp(us(1.0));
            }
        });
        build_graph(&set.trace(&TracerConfig::default()), &GraphConfig::eager()).unwrap()
    }

    fn didactic() -> Binding {
        Binding::uniform(&LogGPSParams::didactic())
    }

    #[test]
    fn late_sender_lambda_is_one() {
        // Fig. 4b: with c0 = 1 µs the message edge stays critical, λ = 1.
        let g = running_example(1.0);
        for l in [0.0, 100.0, 1000.0, 100_000.0] {
            let e = evaluate(&g, &didactic(), l);
            assert_eq!(e.lambda, 1.0, "L = {l}");
            assert!((e.runtime - (l + 2_015.0)).abs() < 1e-9);
        }
    }

    #[test]
    fn overlap_lambda_switches_at_critical_latency() {
        // Fig. 4c: with c0 = 0.1 µs, λ flips from 0 to 1 at 0.385 µs.
        let g = running_example(0.1);
        let below = evaluate(&g, &didactic(), 200.0);
        assert_eq!(below.lambda, 0.0);
        assert!((below.runtime - us(1.5)).abs() < 1e-9);
        let above = evaluate(&g, &didactic(), 500.0);
        assert_eq!(above.lambda, 1.0);
        assert!((above.runtime - us(1.615)).abs() < 1e-9);
        // At the breakpoint the right derivative (slope tie-break) wins.
        let at = evaluate(&g, &didactic(), 385.0);
        assert_eq!(at.lambda, 1.0);
    }

    #[test]
    fn critical_path_is_connected_and_monotone() {
        let g = running_example(1.0);
        let e = evaluate(&g, &didactic(), us(3.0));
        assert!(e.critical_path.len() >= 2);
        for w in e.critical_path.windows(2) {
            assert!(g.preds(w[1]).iter().any(|edge| edge.other == w[0]));
            assert!(e.finish[w[0] as usize] <= e.finish[w[1] as usize] + 1e-9);
        }
        // The path ends at the global sink.
        let last = *e.critical_path.last().unwrap();
        assert!((e.finish[last as usize] - e.runtime).abs() < 1e-9);
    }

    #[test]
    fn rho_fraction() {
        let g = running_example(1.0);
        let l = us(3.0);
        let e = evaluate(&g, &didactic(), l);
        // T = L + 2.015 µs, latency share = L/T.
        let want = l / (l + 2_015.0);
        assert!((e.rho(l) - want).abs() < 1e-12);
    }

    #[test]
    fn matches_dataflow_simulator_without_noise() {
        use llamp_sim::{SimConfig, Simulator};
        let set = ProgramSet::spmd(4, |rank, b| {
            b.comp(us(10.0) * (rank + 1) as f64);
            b.allreduce(256);
            b.comp(us(5.0));
            b.barrier();
        });
        let g = build_graph(&set.trace(&TracerConfig::default()), &GraphConfig::eager()).unwrap();
        let params = LogGPSParams::cscs_testbed(4).with_o(us(2.0));
        let e = evaluate(&g, &Binding::uniform(&params), params.l);
        // Dataflow replay (no CPU serialisation): exact agreement.
        let s = Simulator::new(&g, SimConfig::dataflow(params)).run();
        assert!(
            (e.runtime - s.makespan).abs() < 1e-6,
            "eval {} vs sim {}",
            e.runtime,
            s.makespan
        );
        // LogGOPSim-style CPU serialisation only ever slows execution, and
        // by at most one o per concurrent send/recv pair per round.
        let s2 = Simulator::new(&g, SimConfig::ideal(params)).run();
        assert!(s2.makespan >= e.runtime - 1e-6);
        assert!(s2.makespan <= e.runtime + 8.0 * params.o);
    }

    #[test]
    fn pair_sensitivities_accumulate_on_critical_pair() {
        let g = running_example(1.0);
        let e = evaluate(&g, &didactic(), us(3.0));
        let ps = pair_sensitivities(&g, &e);
        assert_eq!(ps.lambda_at(0, 1), 1.0);
        assert_eq!(ps.lambda_at(1, 0), 1.0);
        assert_eq!(ps.bytes_at(0, 1), 3.0); // 4-byte message: s-1
        assert_eq!(ps.lambda_at(0, 0), 0.0);
    }

    #[test]
    fn contracted_graph_evaluates_identically() {
        let set = ProgramSet::spmd(3, |rank, b| {
            b.comp(us(1.0) * (rank + 1) as f64);
            b.allreduce(64);
            b.comp(us(2.0));
            b.bcast(128, 0);
        });
        let g = build_graph(&set.trace(&TracerConfig::default()), &GraphConfig::eager()).unwrap();
        let cg = g.contracted();
        let params = LogGPSParams::cscs_testbed(3).with_o(500.0);
        let b = Binding::uniform(&params);
        for l in [0.0, 1_000.0, 50_000.0] {
            let full = evaluate(&g, &b, l);
            let contracted = evaluate(&cg, &b, l);
            assert!(
                (full.runtime - contracted.runtime).abs() < 1e-6,
                "L={l}: {} vs {}",
                full.runtime,
                contracted.runtime
            );
            assert_eq!(full.lambda, contracted.lambda, "L={l}");
        }
    }
}

//! High-level analysis facade.
//!
//! [`Analyzer`] bundles the pieces a user of the toolchain actually wants:
//! build once from an execution graph and a network parameter set, then ask
//! for runtime predictions, sensitivity/ratio curves, critical latencies
//! and the x% latency-tolerance figures of Fig. 1 / Fig. 9 — without
//! touching LPs or envelopes directly.

use crate::binding::Binding;
use crate::eval::{evaluate, Evaluation};
use crate::lp_build::GraphLp;
use crate::parametric::ParametricProfile;
use llamp_model::LogGPSParams;
use llamp_schedgen::{ExecGraph, ReduceConfig, ReducedGraph, ReductionStats};

/// The x% latency-tolerance triple the paper highlights (green / orange /
/// red zones of Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ToleranceZones {
    /// Baseline runtime `T₀` at the base latency (ns).
    pub baseline_runtime: f64,
    /// Max added latency `∆L` before >1% slowdown (ns).
    pub pct1: f64,
    /// Max added latency before >2% slowdown (ns).
    pub pct2: f64,
    /// Max added latency before >5% slowdown (ns).
    pub pct5: f64,
}

/// One sample of a latency sweep (a row of the Fig. 9 curves).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Added latency `∆L` (ns).
    pub delta_l: f64,
    /// Predicted runtime (ns).
    pub runtime: f64,
    /// Latency sensitivity `λ_L`.
    pub lambda: f64,
    /// Latency ratio `ρ_L`.
    pub rho: f64,
}

/// Analysis driver for one execution graph under one network binding.
#[derive(Debug, Clone)]
pub struct Analyzer {
    graph: ReducedGraph,
    binding: Binding,
    base_l: f64,
}

impl Analyzer {
    /// Build from a graph and LogGPS parameters (uniform latency model).
    /// The graph runs through the full makespan-preserving reduction
    /// pipeline — the analysis-level presolve — so construction cost is
    /// paid once; results are provenance-mapped back to the original
    /// graph (see [`Analyzer::lift_path`]).
    pub fn new(graph: &ExecGraph, params: &LogGPSParams) -> Self {
        Self::new_with_config(graph, params, &ReduceConfig::default())
    }

    /// [`Analyzer::new`] with an explicit reduction configuration
    /// ([`ReduceConfig::none`] analyses the raw graph).
    pub fn new_with_config(graph: &ExecGraph, params: &LogGPSParams, cfg: &ReduceConfig) -> Self {
        Self::with_binding_config(graph, Binding::uniform(params), params.l, cfg)
    }

    /// Build with an explicit binding (topology / per-class / HLogGP
    /// analyses). `base_l` is the reference value of the analysis variable
    /// (e.g. the baseline wire latency).
    pub fn with_binding(graph: &ExecGraph, binding: Binding, base_l: f64) -> Self {
        Self::with_binding_config(graph, binding, base_l, &ReduceConfig::default())
    }

    /// [`Analyzer::with_binding`] with an explicit reduction
    /// configuration.
    pub fn with_binding_config(
        graph: &ExecGraph,
        binding: Binding,
        base_l: f64,
        cfg: &ReduceConfig,
    ) -> Self {
        Self {
            graph: graph.reduced(cfg),
            binding,
            base_l,
        }
    }

    /// The reduced graph under analysis.
    pub fn graph(&self) -> &ExecGraph {
        self.graph.graph()
    }

    /// The reduction IR, including the provenance map and pass stats.
    pub fn reduction(&self) -> &ReducedGraph {
        &self.graph
    }

    /// What the reduction pipeline did to this analyzer's graph.
    pub fn reduction_stats(&self) -> &ReductionStats {
        self.graph.stats()
    }

    /// Lift a critical path reported against the reduced graph (e.g.
    /// [`Evaluation::critical_path`]) back to original-graph vertex ids.
    pub fn lift_path(&self, path: &[u32]) -> Vec<u32> {
        self.graph.lift_path(path)
    }

    /// The active binding.
    pub fn binding(&self) -> &Binding {
        &self.binding
    }

    /// Base value of the analysis variable (network latency `L` for the
    /// uniform model).
    pub fn base_l(&self) -> f64 {
        self.base_l
    }

    /// Fast runtime/λ/critical-path evaluation at one latency value.
    pub fn evaluate(&self, l: f64) -> Evaluation {
        evaluate(&self.graph, &self.binding, l)
    }

    /// Predicted runtime at the base latency.
    pub fn baseline_runtime(&self) -> f64 {
        self.evaluate(self.base_l).runtime
    }

    /// Build the LP form (Algorithm 1) for solver-based queries, answered
    /// by the default backend (warm-started sparse simplex with the
    /// parametric shortcut).
    pub fn lp(&self) -> GraphLp {
        GraphLp::build(&self.graph, &self.binding)
    }

    /// Build the LP form with a named solver backend (`"dense"`,
    /// `"sparse"` or `"parametric"`). `None` for an unknown name.
    pub fn lp_named(&self, backend: &str) -> Option<GraphLp> {
        GraphLp::build_named(&self.graph, &self.binding, backend)
    }

    /// Base value of one sweep parameter: the point the campaign's delta
    /// axes are relative to (`L` from the analyzer, `G`/`o` from the
    /// binding).
    pub fn base_param(&self, p: crate::binding::SweepParam) -> f64 {
        self.binding.base_value(p, self.base_l)
    }

    /// The full base query point `(L, G, o)`.
    pub fn base_point(&self) -> crate::multi_lp::ParamPoint {
        use crate::binding::SweepParam;
        crate::multi_lp::ParamPoint {
            l: self.base_param(SweepParam::L),
            g: self.base_param(SweepParam::G),
            o: self.base_param(SweepParam::O),
        }
    }

    /// Build the multi-parameter LP (symbolic `L`, `G`, `o`; see
    /// [`crate::multi_lp::GraphMultiLp`]) with the default backend.
    pub fn multi_lp(&self) -> crate::multi_lp::GraphMultiLp {
        crate::multi_lp::GraphMultiLp::build(&self.graph, &self.binding)
    }

    /// Build the multi-parameter LP with a named solver backend.
    pub fn multi_lp_named(&self, backend: &str) -> Option<crate::multi_lp::GraphMultiLp> {
        crate::multi_lp::GraphMultiLp::build_named(&self.graph, &self.binding, backend)
    }

    /// Direct evaluation at an arbitrary `(L, G, o)` point, with the full
    /// sensitivity gradient (see [`crate::eval::evaluate_multi`]).
    pub fn evaluate_multi(&self, at: crate::multi_lp::ParamPoint) -> crate::eval::MultiEvaluation {
        crate::eval::evaluate_multi(&self.graph, &self.binding, at.l, at.g, at.o)
    }

    /// Exact `T(L)` profile over `[l_min, l_max]`.
    pub fn profile(&self, l_min: f64, l_max: f64) -> ParametricProfile {
        ParametricProfile::compute(&self.graph, &self.binding, (l_min, l_max))
    }

    /// The x% tolerance (§II-D2) as *added* latency `∆L` above the base
    /// latency, computed exactly from the parametric profile.
    /// `f64::INFINITY` means the cap is never exceeded within `search_hi`.
    pub fn tolerance_pct(&self, pct: f64, search_hi: f64) -> f64 {
        let t0 = self.baseline_runtime();
        let cap = t0 * (1.0 + pct / 100.0);
        let prof = self.profile(self.base_l, search_hi);
        match prof.tolerance(cap) {
            None => 0.0,
            Some(x) if x >= search_hi => f64::INFINITY,
            Some(x) => x - self.base_l,
        }
    }

    /// The 1/2/5% tolerance zones of Fig. 1.
    pub fn tolerance_zones(&self, search_hi: f64) -> ToleranceZones {
        let t0 = self.baseline_runtime();
        let prof = self.profile(self.base_l, search_hi);
        let zone = |pct: f64| -> f64 {
            let cap = t0 * (1.0 + pct / 100.0);
            match prof.tolerance(cap) {
                None => 0.0,
                Some(x) if x >= search_hi => f64::INFINITY,
                Some(x) => x - self.base_l,
            }
        };
        ToleranceZones {
            baseline_runtime: t0,
            pct1: zone(1.0),
            pct2: zone(2.0),
            pct5: zone(5.0),
        }
    }

    /// Sweep `∆L` over `deltas` (the Fig. 9 x-axis), producing runtime,
    /// `λ_L` and `ρ_L` per point from the exact profile.
    pub fn sweep(&self, deltas: &[f64]) -> Vec<SweepPoint> {
        let hi = self.base_l + deltas.iter().copied().fold(0.0f64, f64::max);
        let prof = self.profile(self.base_l.min(hi), hi.max(self.base_l) + 1.0);
        deltas
            .iter()
            .map(|&d| {
                let l = self.base_l + d;
                SweepPoint {
                    delta_l: d,
                    runtime: prof.runtime(l),
                    lambda: prof.lambda(l),
                    rho: prof.rho(l),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llamp_schedgen::{build_graph, GraphConfig};
    use llamp_trace::{ProgramSet, TracerConfig};
    use llamp_util::time::us;

    /// A bulk-synchronous job: per-iteration compute then allreduce — a
    /// miniature of the paper's applications.
    fn bsp_graph(ranks: u32, iters: usize, comp_us: f64) -> ExecGraph {
        let set = ProgramSet::spmd(ranks, |_, b| {
            for _ in 0..iters {
                b.comp(us(comp_us));
                b.allreduce(64);
            }
        });
        build_graph(&set.trace(&TracerConfig::default()), &GraphConfig::eager()).unwrap()
    }

    #[test]
    fn zones_are_ordered() {
        let g = bsp_graph(8, 10, 50.0);
        let params = LogGPSParams::cscs_testbed(8).with_o(us(2.0));
        let a = Analyzer::new(&g, &params);
        let z = a.tolerance_zones(us(2_000.0));
        assert!(z.pct1 > 0.0);
        assert!(z.pct1 <= z.pct2);
        assert!(z.pct2 <= z.pct5);
    }

    #[test]
    fn zone_caps_are_respected() {
        let g = bsp_graph(4, 5, 100.0);
        let params = LogGPSParams::cscs_testbed(4).with_o(us(2.0));
        let a = Analyzer::new(&g, &params);
        let z = a.tolerance_zones(us(5_000.0));
        let t0 = z.baseline_runtime;
        // Runtime exactly at the 1% tolerance equals 1.01 T0.
        let at = a.evaluate(params.l + z.pct1).runtime;
        assert!(
            (at - 1.01 * t0).abs() < 1e-6 * t0,
            "runtime at pct1 {} vs cap {}",
            at,
            1.01 * t0
        );
        // Just past it, the cap is exceeded.
        let past = a.evaluate(params.l + z.pct1 + us(1.0)).runtime;
        assert!(past > 1.01 * t0);
    }

    #[test]
    fn sweep_points_match_evaluation() {
        let g = bsp_graph(4, 8, 20.0);
        let params = LogGPSParams::cscs_testbed(4).with_o(us(1.0));
        let a = Analyzer::new(&g, &params);
        let deltas: Vec<f64> = (0..10).map(|i| us(10.0) * i as f64).collect();
        for pt in a.sweep(&deltas) {
            let e = a.evaluate(params.l + pt.delta_l);
            assert!((pt.runtime - e.runtime).abs() < 1e-6 * (1.0 + e.runtime));
            assert!((pt.lambda - e.lambda).abs() < 1e-9);
        }
    }

    #[test]
    fn more_compute_means_more_tolerance() {
        // Strong-scaling intuition (§III-C): more compute per rank hides
        // more latency.
        let params = LogGPSParams::cscs_testbed(4).with_o(us(1.0));
        let small = Analyzer::new(&bsp_graph(4, 6, 10.0), &params);
        let big = Analyzer::new(&bsp_graph(4, 6, 1_000.0), &params);
        let zs = small.tolerance_zones(us(100_000.0));
        let zb = big.tolerance_zones(us(100_000.0));
        assert!(
            zb.pct1 > zs.pct1,
            "compute-heavy {} vs light {}",
            zb.pct1,
            zs.pct1
        );
    }

    #[test]
    fn fully_synchronous_job_has_near_zero_tolerance() {
        // No compute at all: any added latency shows up ~proportionally.
        let g = bsp_graph(4, 4, 0.0);
        let params = LogGPSParams::cscs_testbed(4).with_o(100.0);
        let a = Analyzer::new(&g, &params);
        let z = a.tolerance_zones(us(1_000.0));
        // 1% of an all-communication runtime is tiny.
        assert!(z.pct1 < a.baseline_runtime() * 0.02);
    }
}

#![deny(missing_docs)]
//! # llamp-core — the LLAMP analyzer
//!
//! The paper's contribution: converting MPI execution graphs into linear
//! programs under the LogGPS model and reading network-latency sensitivity
//! (`λ_L`), latency ratios (`ρ_L`), critical latencies (`L_c`) and x%
//! latency tolerance directly off the solved models (paper §II).
//!
//! Three interchangeable, cross-validated backends answer the same
//! questions:
//!
//! | backend | module | strengths |
//! |---|---|---|
//! | LP (Algorithm 1) | [`lp_build`] | the paper's formulation: reduced costs, basis ranging (Algorithm 2), the flipped tolerance objective |
//! | parametric envelope | [`parametric`] | the exact `T(L)` curve over a window in one near-linear pass |
//! | direct evaluation | [`eval`] | critical-path extraction and the pairwise sensitivity matrices of the placement heuristic |
//!
//! On top sit [`binding`] (uniform / topology / per-wire-class / HLogGP
//! latency models), the [`analyzer::Analyzer`] facade, and
//! [`placement`] (Algorithm 3 plus block / round-robin / random /
//! volume-greedy baselines).

pub mod analyzer;
pub mod binding;
pub mod crash;
pub mod eval;
pub mod lowering;
pub mod lp_build;
pub mod multi_lp;
pub mod parametric;
pub mod placement;

pub use analyzer::{Analyzer, SweepPoint, ToleranceZones};
pub use binding::{
    AnalysisVariable, Binding, LatencyModel, LatencyTerm, MultiBound, PairTable, SweepParam,
};
pub use crash::CrashKind;
pub use eval::{
    evaluate, evaluate_multi, pair_sensitivities, Evaluation, MultiEvaluation, PairSensitivities,
};
pub use llamp_lp::SolveStats;
pub use llamp_schedgen::{GraphView, ReduceConfig, ReducedGraph, ReductionStats};
pub use lowering::{lower_walk, Lowered};
pub use lp_build::{GraphLp, Prediction};
pub use multi_lp::{GraphMultiLp, MultiPrediction, ParamPoint};
pub use parametric::ParametricProfile;
pub use placement::{
    block_mapping, evaluate_mapping, llamp_placement, random_mapping, round_robin_mapping,
    traffic_matrix, volume_greedy_mapping, Machine, PlacementOutcome,
};

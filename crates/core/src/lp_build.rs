//! Execution graph → linear program (Algorithm 1) and the LP-powered
//! analyses: runtime prediction, latency sensitivity via reduced costs,
//! latency tolerance via the flipped objective (§II-D2), and the
//! critical-latency search of Algorithm 2.
//!
//! The construction follows the paper exactly: traversing the graph in
//! topological order, a vertex with one predecessor extends its
//! predecessor's affine expression, while a vertex with several
//! predecessors introduces a decision variable `y_v` and one `≥` constraint
//! per incoming edge. The network latency appears as the decision variable
//! `l`; queries pin it with a lower bound (`l ≥ L`) — never an equality —
//! which is what makes the reduced cost of `l` equal `∂T/∂L ≥ 0`.

use crate::binding::Binding;
use crate::crash::{CrashKind, CrashPlan, CrashRow, NO_BASE};
use crate::lowering::lower_walk;
use llamp_lp::backend::{by_name, Parametric, SolverBackend};
use llamp_lp::{
    resolve_robust, Basis, LpModel, Objective, Relation, Solution, SolveError, SolveStats, VarId,
};
use llamp_schedgen::GraphView;

/// Affine running expression `base + c + m·l` for a vertex's completion
/// time while building the LP (Algorithm 1's `Tv`).
#[derive(Debug, Clone, Copy)]
struct Expr {
    base: Option<VarId>,
    c: f64,
    m: f64,
}

/// The LP form of an execution graph under a binding, paired with the
/// [`SolverBackend`] that answers its queries. Successive queries re-solve
/// through the backend's warm-start path, so a latency sweep threads the
/// previous optimal basis into the next point (one factorisation plus a
/// few — often zero — pivots per point instead of a cold solve).
#[derive(Debug)]
pub struct GraphLp {
    model: LpModel,
    l: VarId,
    t: VarId,
    backend: Box<dyn SolverBackend>,
    /// Crash *plan* (see [`GraphLp::build_with_backend`]): the per-row
    /// longest-path recursion records, instantiated into a concrete
    /// crash [`Basis`] at each query's latency point.
    plan: CrashPlan,
    /// Which in-edge selection rule instantiates the plan.
    crash_kind: CrashKind,
}

/// What a single `predict` solve reports (the quantities LLAMP reads from
/// the solver).
#[derive(Debug, Clone, Copy)]
pub struct Prediction {
    /// Predicted runtime `T` (ns).
    pub runtime: f64,
    /// Latency sensitivity `λ_L` (reduced cost of `l`).
    pub lambda: f64,
    /// Range of feasibility of the latency lower bound: within
    /// `[l_low, l_high]` the optimal basis — and hence the critical path
    /// and `λ_L` — stay unchanged (`SALBLow`/`SALBUp`).
    pub l_feasible: (f64, f64),
    /// Simplex iterations spent.
    pub iterations: u64,
}

impl Prediction {
    /// The latency ratio `ρ_L` at the given latency.
    pub fn rho(&self, l: f64) -> f64 {
        if self.runtime <= 0.0 {
            0.0
        } else {
            self.lambda * l / self.runtime
        }
    }
}

impl GraphLp {
    /// Algorithm 1 with the default solver backend ([`Parametric`]: sparse
    /// simplex + warm starts + the basis-stability shortcut — the right
    /// choice for sweeps). The latency variable starts with bound `l ≥ 0`.
    /// Accepts any [`GraphView`] — raw or reduced graphs alike.
    pub fn build<V: GraphView + ?Sized>(graph: &V, binding: &Binding) -> Self {
        Self::build_with_backend(graph, binding, Box::new(Parametric::default()))
    }

    /// Algorithm 1 with a named solver backend (`"dense"`, `"sparse"`,
    /// `"parametric"` or `"dual"`; see [`by_name`]).
    pub fn build_named<V: GraphView + ?Sized>(
        graph: &V,
        binding: &Binding,
        backend: &str,
    ) -> Option<Self> {
        Some(Self::build_with_backend(graph, binding, by_name(backend)?))
    }

    /// Algorithm 1: build the LP for `graph` under `binding`, answered by
    /// an explicit solver backend.
    ///
    /// Alongside the model this records a `CrashPlan`: one record per
    /// row of the longest-path recursion the LP encodes. Each query
    /// instantiates the plan *at its latency point* — by default
    /// ([`CrashKind::LongestPath`]) running the exact forward DAG
    /// longest-path pass, so every merge variable `y_v` (and the makespan
    /// `t`) is made basic on the row that defines its max at that point
    /// while all other rows keep their logical basic. By the graph's
    /// topological order that submatrix is unit lower triangular —
    /// trivially nonsingular — and evaluated at the query point the basis
    /// is primal feasible *and* dual feasible, i.e. optimal up to
    /// degeneracy: a cold solve seeded from it needs no pivots at all,
    /// only the LU factorisation and the optimality pricing pass.
    pub fn build_with_backend<V: GraphView + ?Sized>(
        graph: &V,
        binding: &Binding,
        backend: Box<dyn SolverBackend>,
    ) -> Self {
        use llamp_lp::solution::VarStatus;

        let span = llamp_obs::span("lp.lower");
        let mut model = LpModel::new(Objective::Minimize);
        let l = model.add_var("l", 0.0, f64::INFINITY, 0.0);
        let t = model.add_var("t", f64::NEG_INFINITY, f64::INFINITY, 1.0);
        // Crash-plan skeleton, filled in as variables and rows appear.
        let mut col_status = vec![VarStatus::AtLower, VarStatus::FreeZero];
        let mut rows: Vec<CrashRow> = Vec::new();
        let mut has_sink = false;

        let n = graph.num_vertices();
        let mut exprs: Vec<Expr> = vec![
            Expr {
                base: None,
                c: 0.0,
                m: 0.0
            };
            n
        ];

        lower_walk(graph, binding, |low| {
            let v = low.id;
            let (vc, vm) = binding.project(low.cost);
            let e = match low.preds.len() {
                0 => Expr {
                    base: None,
                    c: vc,
                    m: vm,
                },
                1 => {
                    let (p, eb) = low.preds[0];
                    let (ec, em) = binding.project(eb);
                    let u = exprs[p as usize];
                    Expr {
                        base: u.base,
                        c: u.c + ec + vc,
                        m: u.m + em + vm,
                    }
                }
                _ => {
                    let y = model.add_var(format!("y{v}"), f64::NEG_INFINITY, f64::INFINITY, 0.0);
                    col_status.push(VarStatus::Basic);
                    for &(p, eb) in low.preds {
                        let (ec, em) = binding.project(eb);
                        let u = exprs[p as usize];
                        // y ≥ base_u + (c_u + ec) + (m_u + em)·l
                        let mut terms = vec![(y, 1.0)];
                        if let Some(b) = u.base {
                            terms.push((b, -1.0));
                        }
                        let m = u.m + em;
                        if m != 0.0 {
                            terms.push((l, -m));
                        }
                        let rhs = u.c + ec;
                        model.add_constraint(format!("in{v}_{p}"), &terms, Relation::Ge, rhs);
                        rows.push(CrashRow {
                            target: y.0,
                            base: u.base.map_or(NO_BASE, |b| b.0),
                            c: rhs,
                            ml: m,
                            mg: 0.0,
                            mo: 0.0,
                        });
                    }
                    Expr {
                        base: Some(y),
                        c: vc,
                        m: vm,
                    }
                }
            };
            exprs[v as usize] = e;

            // Sinks bound the makespan variable: t ≥ Tv.
            if low.is_sink {
                let ex = exprs[v as usize];
                let mut terms = vec![(t, 1.0)];
                if let Some(b) = ex.base {
                    terms.push((b, -1.0));
                }
                if ex.m != 0.0 {
                    terms.push((l, -ex.m));
                }
                model.add_constraint(format!("sink{v}"), &terms, Relation::Ge, ex.c);
                rows.push(CrashRow {
                    target: t.0,
                    base: ex.base.map_or(NO_BASE, |b| b.0),
                    c: ex.c,
                    ml: ex.m,
                    mg: 0.0,
                    mo: 0.0,
                });
                has_sink = true;
            }
        });

        // `t` is basic on its defining sink row (a sink always exists in a
        // nonempty DAG; stay free-at-zero otherwise).
        if has_sink {
            col_status[t.0 as usize] = VarStatus::Basic;
        }
        let plan = CrashPlan { col_status, rows };

        let lp = Self {
            model,
            l,
            t,
            backend,
            plan,
            crash_kind: CrashKind::default(),
        };
        if llamp_obs::is_enabled() {
            span.field_str("shape", "single");
            span.field_u64("rows", lp.model.num_constraints() as u64);
            span.field_u64("cols", lp.model.num_vars() as u64);
        }
        lp
    }

    /// The underlying model (for statistics or custom solves).
    pub fn model(&self) -> &LpModel {
        &self.model
    }

    /// Name of the active solver backend.
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// Drop the warm state accumulated from previous queries: the next
    /// query seeds the crash basis at its own latency point, exactly as a
    /// freshly built `GraphLp` would.
    pub fn reset_backend(&mut self) {
        self.backend.reset();
    }

    /// The crash-basis selection rule in effect (see [`CrashKind`]).
    pub fn crash_kind(&self) -> CrashKind {
        self.crash_kind
    }

    /// Switch the crash-basis selection rule and drop warm state, so the
    /// next query cold-starts under the new rule.
    pub fn set_crash_kind(&mut self, kind: CrashKind) {
        self.crash_kind = kind;
        self.backend.reset();
    }

    /// Instantiate the crash basis at a latency point (exposed for
    /// conformance tests and benchmarks; queries do this internally).
    pub fn crash_basis(&self, l_value: f64) -> Basis {
        self.plan.basis_at(self.crash_kind, l_value, 0.0, 0.0)
    }

    /// Compute the crash at `l_value`, seed it if the backend holds no
    /// warm state (fresh build or after [`GraphLp::reset_backend`]), and
    /// hand it back for the robust-resolve fallback ladder.
    fn arm_crash(&mut self, l_value: f64) -> Basis {
        let crash = self.crash_basis(l_value);
        if self.backend.warm_basis().is_none() {
            self.backend.seed(&crash);
        }
        crash
    }

    /// Cumulative solver-effort counters across every query this instance
    /// has answered (see [`SolveStats`]).
    pub fn solver_stats(&self) -> SolveStats {
        self.backend.stats()
    }

    /// The basis the backend would warm-start its next query from.
    pub fn warm_basis(&self) -> Option<Basis> {
        self.backend.warm_basis().cloned()
    }

    /// Re-seed the backend's warm state from an explicit basis (e.g. run
    /// several related queries from one reference optimum instead of
    /// chaining them).
    pub fn seed_backend(&mut self, basis: &Basis) {
        self.backend.seed(basis);
    }

    /// Latency decision variable.
    pub fn l_var(&self) -> VarId {
        self.l
    }

    /// Makespan decision variable.
    pub fn t_var(&self) -> VarId {
        self.t
    }

    /// Solve `min t` with `l ≥ l_value` and report runtime, `λ_L` and the
    /// basis-stability range of `L`.
    pub fn predict(&mut self, l_value: f64) -> Result<Prediction, SolveError> {
        self.model.set_var_lb(self.l, l_value);
        self.model.set_sense(Objective::Minimize);
        self.model.set_objective(&[(self.t, 1.0)]);
        let crash = self.arm_crash(l_value);
        let sol = resolve_robust(self.backend.as_mut(), &self.model, Some(&crash))?;
        Ok(Prediction {
            runtime: sol.objective(),
            lambda: sol.reduced_cost(self.l),
            l_feasible: sol.lb_range(self.l),
            iterations: sol.iterations(),
        })
    }

    /// Solve `min t` and hand back the raw solution (for tight-constraint /
    /// critical-path inspection).
    pub fn solve_raw(&mut self, l_value: f64) -> Result<Solution, SolveError> {
        self.model.set_var_lb(self.l, l_value);
        self.model.set_sense(Objective::Minimize);
        self.model.set_objective(&[(self.t, 1.0)]);
        let crash = self.arm_crash(l_value);
        resolve_robust(self.backend.as_mut(), &self.model, Some(&crash))
    }

    /// Latency tolerance (§II-D2): maximise `l` subject to
    /// `t ≤ max_runtime`. Returns `f64::INFINITY` when the runtime never
    /// exceeds the cap (fully latency-hiding program) and an `Err` when
    /// even `l = l_floor` violates it.
    pub fn tolerance(&mut self, l_floor: f64, max_runtime: f64) -> Result<f64, SolveError> {
        self.model.set_var_lb(self.l, l_floor);
        self.model.set_var_ub(self.t, max_runtime);
        self.model.set_sense(Objective::Maximize);
        self.model.set_objective(&[(self.l, 1.0)]);
        let crash = self.arm_crash(l_floor);
        let out = match resolve_robust(self.backend.as_mut(), &self.model, Some(&crash)) {
            Ok(sol) => Ok(sol.value(self.l)),
            Err(SolveError::Unbounded) => Ok(f64::INFINITY),
            Err(e) => Err(e),
        };
        // Restore the prediction shape.
        self.model.set_var_ub(self.t, f64::INFINITY);
        self.model.set_sense(Objective::Minimize);
        self.model.set_objective(&[(self.t, 1.0)]);
        out
    }

    /// Algorithm 2: critical latencies within `[l_min, l_max]`, walking
    /// basis-stability ranges from the top of the interval downward. `step`
    /// caps the per-iteration progress (resolution), `eps` nudges the bound
    /// strictly past a discovered breakpoint.
    pub fn critical_latencies(
        &mut self,
        l_min: f64,
        l_max: f64,
        step: f64,
        eps: f64,
    ) -> Result<Vec<f64>, SolveError> {
        assert!(l_min <= l_max && step > 0.0 && eps > 0.0);
        let mut lcs: Vec<f64> = Vec::new();
        let mut l = l_max;
        let mut lambda: Option<f64> = None;
        loop {
            let pred = self.predict(l)?;
            let l_fl = pred.l_feasible.0;
            match lambda {
                Some(prev) if (pred.lambda - prev).abs() <= 1e-9 => {}
                _ => {
                    // λ changed (or first solve): the low end of the new
                    // basis-stability region is a critical latency.
                    if l_fl.is_finite() && l_fl >= l_min && l_fl <= l_max {
                        lcs.push(l_fl);
                    }
                    lambda = Some(pred.lambda);
                }
            }
            if l_fl < l_min || l_fl == f64::NEG_INFINITY {
                break;
            }
            let next = (l - step).min(l_fl - eps);
            if next < l_min {
                break;
            }
            l = next;
        }
        lcs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        lcs.dedup_by(|a, b| (*a - *b).abs() < eps);
        Ok(lcs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::Binding;
    use llamp_model::LogGPSParams;
    use llamp_schedgen::{build_graph, ExecGraph, GraphConfig};
    use llamp_trace::{ProgramSet, TracerConfig};
    use llamp_util::time::us;

    fn running_example(c0_us: f64) -> ExecGraph {
        let set = ProgramSet::spmd(2, |rank, b| {
            if rank == 0 {
                b.comp(us(c0_us));
                b.send(1, 4, 0);
                b.comp(us(1.0));
            } else {
                b.comp(us(0.5));
                b.recv(0, 4, 0);
                b.comp(us(1.0));
            }
        });
        build_graph(&set.trace(&TracerConfig::default()), &GraphConfig::eager()).unwrap()
    }

    fn didactic() -> Binding {
        Binding::uniform(&LogGPSParams::didactic())
    }

    #[test]
    fn fig5_predict_at_half_microsecond() {
        // Fig. 5: l ≥ 0.5 µs ⇒ t = 1.615 µs, λ_L = 1, basis stable down to
        // the critical latency 0.385 µs.
        let g = running_example(0.1);
        let mut lp = GraphLp::build(&g.contracted(), &didactic());
        let p = lp.predict(500.0).unwrap();
        assert!((p.runtime - 1_615.0).abs() < 1e-6, "{}", p.runtime);
        assert!((p.lambda - 1.0).abs() < 1e-9);
        assert!((p.l_feasible.0 - 385.0).abs() < 1e-6, "{:?}", p.l_feasible);
    }

    #[test]
    fn below_critical_latency_lambda_zero() {
        let g = running_example(0.1);
        let mut lp = GraphLp::build(&g.contracted(), &didactic());
        let p = lp.predict(200.0).unwrap();
        assert!((p.runtime - 1_500.0).abs() < 1e-6);
        assert!(p.lambda.abs() < 1e-9);
    }

    #[test]
    fn fig6_tolerance() {
        // Fig. 6: max l s.t. t ≤ 2 µs ⇒ 0.885 µs.
        let g = running_example(0.1);
        let mut lp = GraphLp::build(&g.contracted(), &didactic());
        let tol = lp.tolerance(0.0, 2_000.0).unwrap();
        assert!((tol - 885.0).abs() < 1e-6, "{tol}");
    }

    #[test]
    fn tolerance_restores_prediction_state() {
        let g = running_example(0.1);
        let mut lp = GraphLp::build(&g.contracted(), &didactic());
        let before = lp.predict(500.0).unwrap();
        let _ = lp.tolerance(0.0, 2_000.0).unwrap();
        let after = lp.predict(500.0).unwrap();
        assert!((before.runtime - after.runtime).abs() < 1e-9);
        assert!((before.lambda - after.lambda).abs() < 1e-9);
    }

    #[test]
    fn infeasible_tolerance_reported() {
        let g = running_example(0.1);
        let mut lp = GraphLp::build(&g.contracted(), &didactic());
        // Cap below the zero-latency runtime 1.5 µs.
        assert!(lp.tolerance(0.0, 1_000.0).is_err());
    }

    #[test]
    fn fig16_critical_latency_search() {
        // Algorithm 2 on the running example over [0.2, 0.5] µs finds the
        // single critical latency 0.385 µs.
        let g = running_example(0.1);
        let mut lp = GraphLp::build(&g.contracted(), &didactic());
        let lcs = lp.critical_latencies(200.0, 500.0, 100.0, 0.01).unwrap();
        assert_eq!(lcs.len(), 1, "{lcs:?}");
        assert!((lcs[0] - 385.0).abs() < 1e-6);
    }

    #[test]
    fn all_backends_agree_on_fig5() {
        let g = running_example(0.1);
        for name in llamp_lp::backend::BACKEND_NAMES {
            let mut lp = GraphLp::build_named(&g.contracted(), &didactic(), name).unwrap();
            assert_eq!(lp.backend_name(), *name);
            let p = lp.predict(500.0).unwrap();
            assert!((p.runtime - 1_615.0).abs() < 1e-6, "{name}: {}", p.runtime);
            assert!((p.lambda - 1.0).abs() < 1e-9, "{name}");
        }
        assert!(GraphLp::build_named(&g, &didactic(), "gurobi").is_none());
    }

    #[test]
    fn warm_sweep_matches_cold_solves_bitwise() {
        // A descending latency sweep through the default (parametric)
        // backend must report exactly what independent cold solves do —
        // the engine's cross-backend byte-identity contract in miniature.
        let g = running_example(0.1).contracted();
        let mut warm = GraphLp::build(&g, &didactic());
        for i in (0..=20).rev() {
            let l = 50.0 * i as f64;
            let p = warm.predict(l).unwrap();
            let mut cold = GraphLp::build_named(&g, &didactic(), "sparse").unwrap();
            let q = cold.predict(l).unwrap();
            assert_eq!(p.runtime.to_bits(), q.runtime.to_bits(), "L={l}");
            assert_eq!(p.lambda.to_bits(), q.lambda.to_bits(), "L={l}");
        }
    }

    #[test]
    fn lp_agrees_with_graph_evaluation() {
        let set = ProgramSet::spmd(4, |rank, b| {
            b.comp(us(3.0) * (rank + 1) as f64);
            b.allreduce(512);
            b.comp(us(1.0));
            b.barrier();
            if rank == 0 {
                b.send(3, 2048, 9);
            } else if rank == 3 {
                b.recv(0, 2048, 9);
            }
        });
        let g = build_graph(&set.trace(&TracerConfig::default()), &GraphConfig::eager())
            .unwrap()
            .contracted();
        let params = LogGPSParams::cscs_testbed(4).with_o(us(1.0));
        let binding = Binding::uniform(&params);
        let mut lp = GraphLp::build(&g, &binding);
        for l in [0.0, us(1.0), us(10.0), us(100.0)] {
            let p = lp.predict(l).unwrap();
            let e = crate::eval::evaluate(&g, &binding, l);
            assert!(
                (p.runtime - e.runtime).abs() < 1e-6 * (1.0 + e.runtime),
                "L={l}: lp {} vs eval {}",
                p.runtime,
                e.runtime
            );
            assert!(
                (p.lambda - e.lambda).abs() < 1e-6,
                "L={l}: λ lp {} vs eval {}",
                p.lambda,
                e.lambda
            );
        }
    }

    #[test]
    fn rendezvous_lp_matches_eval() {
        let bytes = 300 * 1024u64;
        let set = ProgramSet::spmd(2, |rank, b| {
            if rank == 0 {
                b.comp(us(2.0));
                b.send(1, bytes, 0);
            } else {
                b.recv(0, bytes, 0);
                b.comp(us(1.0));
            }
        });
        let g = build_graph(&set.trace(&TracerConfig::default()), &GraphConfig::paper())
            .unwrap()
            .contracted();
        let params = LogGPSParams::cscs_testbed(2).with_o(us(1.0));
        let binding = Binding::uniform(&params);
        let mut lp = GraphLp::build(&g, &binding);
        for l in [0.0, us(5.0), us(50.0)] {
            let p = lp.predict(l).unwrap();
            let e = crate::eval::evaluate(&g, &binding, l);
            assert!(
                (p.runtime - e.runtime).abs() < 1e-6 * (1.0 + e.runtime),
                "L={l}: {} vs {}",
                p.runtime,
                e.runtime
            );
            // Rendezvous: 4 latency traversals on the critical path (REQ +
            // 3 in the completion edge).
            assert!((p.lambda - e.lambda).abs() < 1e-6);
        }
    }
}

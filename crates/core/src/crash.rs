//! Crash-basis construction for the Algorithm-1 LPs.
//!
//! LLAMP's `min t` LP is the dual of a pure DAG-longest-path problem, so
//! the optimal basis has a known combinatorial shape: every merge
//! variable `y_v` (and the makespan `t`) is basic on the incoming row
//! that *defines* its max, that row's logical rests at its lower bound
//! (the constraint is tight), and every non-defining row keeps its
//! logical basic. Which row defines the max depends on where the
//! parameters sit — so the crash is stored as a **plan** (one record per
//! row, in the build's topological row order) and instantiated into a
//! [`Basis`] at a concrete parameter point.
//!
//! Two instantiation rules:
//!
//! * [`CrashKind::LongestPath`] (the default) runs the exact forward
//!   longest-path recursion at the query point: one pass over the rows
//!   computes every target's potential `max(pot(base) + c + m·point)`
//!   and records the argmax row. Evaluated **at that point** the
//!   resulting tree basis is primal feasible (each `y_v` equals its max)
//!   *and* dual feasible (the duals are the 0/1 critical-subtree
//!   indicators, and every parameter multiplier is nonnegative), i.e.
//!   optimal up to degeneracy — a cold solve seeded from it needs no
//!   pivots, only the optimality pricing pass.
//! * [`CrashKind::Topological`] reproduces the historic heuristic (the
//!   largest-*constant* in-edge, ignoring the parameter terms) — kept as
//!   the conformance baseline and for measuring what the exact crash
//!   buys.
//!
//! Ties break toward the lowest row index (strict `>` replacement), so a
//! plan instantiated at the same point is bit-identical everywhere — the
//! property the cross-backend byte-identity contract needs from a seed.

use llamp_lp::solution::VarStatus;
use llamp_lp::Basis;

/// Which in-edge selection rule instantiates the crash basis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CrashKind {
    /// Exact DAG-longest-path potentials at the query point (optimal up
    /// to degeneracy; the default).
    #[default]
    LongestPath,
    /// The historic largest-constant heuristic (parameter terms ignored).
    Topological,
}

/// One LP row as the crash recursion sees it:
/// `target ≥ base + c + ml·l + mg·g + mo·o` (base absent for source
/// rows; for the single-parameter LP `mg`/`mo` are pre-folded into `c`).
#[derive(Debug, Clone, Copy)]
pub(crate) struct CrashRow {
    /// Column index of the `+1` variable (`y_v` or `t`).
    pub target: u32,
    /// Column index of the `−1` predecessor variable, or `u32::MAX`.
    pub base: u32,
    pub c: f64,
    pub ml: f64,
    pub mg: f64,
    pub mo: f64,
}

pub(crate) const NO_BASE: u32 = u32::MAX;

/// Deferred crash basis: the per-row recursion records plus the
/// point-independent column statuses (parameters at lower bound, merge
/// variables and — when a sink row exists — `t` basic).
#[derive(Debug, Clone)]
pub(crate) struct CrashPlan {
    pub col_status: Vec<VarStatus>,
    pub rows: Vec<CrashRow>,
}

impl CrashPlan {
    /// Instantiate the plan into a concrete [`Basis`] at parameter point
    /// `(l, g, o)` under the given selection rule. One pass over the rows
    /// (they are stored in topological order, so every base's potential
    /// is final before it is referenced).
    pub fn basis_at(&self, kind: CrashKind, l: f64, g: f64, o: f64) -> Basis {
        let n_cols = self.col_status.len();
        // Longest-path potential per column (only targets/bases are read;
        // sources implicitly contribute 0 through `NO_BASE`).
        let mut pot = vec![0.0f64; n_cols];
        let mut winner: Vec<u32> = vec![NO_BASE; n_cols];
        let mut best: Vec<f64> = vec![f64::NEG_INFINITY; n_cols];
        for (i, r) in self.rows.iter().enumerate() {
            let tgt = r.target as usize;
            let score = match kind {
                CrashKind::LongestPath => {
                    let from = if r.base == NO_BASE {
                        0.0
                    } else {
                        pot[r.base as usize]
                    };
                    from + r.c + r.ml * l + r.mg * g + r.mo * o
                }
                CrashKind::Topological => r.c,
            };
            // Strict `>`: ties keep the lowest row index.
            if winner[tgt] == NO_BASE || score > best[tgt] {
                winner[tgt] = i as u32;
                best[tgt] = score;
            }
            if matches!(kind, CrashKind::LongestPath) && best[tgt] > pot[tgt] {
                pot[tgt] = best[tgt];
            }
        }
        let mut row_status = vec![VarStatus::Basic; self.rows.len()];
        for (tgt, &w) in winner.iter().enumerate() {
            debug_assert!(
                w != NO_BASE || self.col_status[tgt] != VarStatus::Basic || self.rows.is_empty(),
                "basic crash column {tgt} has no defining row"
            );
            if w != NO_BASE {
                row_status[w as usize] = VarStatus::AtLower;
            }
        }
        Basis::from_statuses(self.col_status.clone(), row_status)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Diamond: t ≥ y; y ≥ 1 + 2l (edge A), y ≥ 3 (edge B). Below
    /// l = 1 the constant edge defines the max; above, the latency edge.
    fn diamond() -> CrashPlan {
        let row = |target, base, c, ml| CrashRow {
            target,
            base,
            c,
            ml,
            mg: 0.0,
            mo: 0.0,
        };
        CrashPlan {
            // cols: l (param), t, y
            col_status: vec![VarStatus::AtLower, VarStatus::Basic, VarStatus::Basic],
            rows: vec![
                row(2, NO_BASE, 1.0, 2.0), // y ≥ 1 + 2l
                row(2, NO_BASE, 3.0, 0.0), // y ≥ 3
                row(1, 2, 0.5, 0.0),       // t ≥ y + 0.5
            ],
        }
    }

    #[test]
    fn longest_path_winner_tracks_the_point() {
        let plan = diamond();
        let low = plan.basis_at(CrashKind::LongestPath, 0.0, 0.0, 0.0);
        let high = plan.basis_at(CrashKind::LongestPath, 5.0, 0.0, 0.0);
        assert_ne!(low, high, "different points pick different in-edges");
        // The topological heuristic always picks the constant edge.
        let topo = plan.basis_at(CrashKind::Topological, 5.0, 0.0, 0.0);
        assert_eq!(low, topo);
    }

    #[test]
    fn exact_tie_keeps_the_lowest_row() {
        // At l = 1 both in-edges score 3.0: the first row must win.
        let plan = diamond();
        let tie = plan.basis_at(CrashKind::LongestPath, 1.0, 0.0, 0.0);
        let high = plan.basis_at(CrashKind::LongestPath, 5.0, 0.0, 0.0);
        assert_eq!(tie, high, "tie resolves to the lowest (latency) row");
    }
}

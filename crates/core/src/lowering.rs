//! The unified graph-lowering walk.
//!
//! Every analysis builder in this crate — Algorithm 1's LP
//! ([`crate::lp_build`]), the multi-parameter LP ([`crate::multi_lp`]),
//! direct evaluation ([`crate::eval`]) and the parametric envelope
//! ([`crate::parametric`]) — used to duplicate the same loop: walk the
//! graph in topological order, bind each vertex cost and each in-edge
//! cost under the active [`Binding`] (with the correct endpoint ranks),
//! then combine predecessors. [`lower_walk`] is that loop, written once
//! over the [`GraphView`] trait, so every builder works identically on
//! raw [`llamp_schedgen::ExecGraph`]s and reduced
//! [`llamp_schedgen::ReducedGraph`]s — and any future graph IR that
//! implements the view.
//!
//! Costs are delivered as fully symbolic [`MultiBound`]s; single-variable
//! builders collapse them with [`Binding::project`].

use crate::binding::{Binding, MultiBound};
use llamp_schedgen::GraphView;

/// One lowered vertex, handed to the builder callback in topological
/// order.
#[derive(Debug)]
pub struct Lowered<'a> {
    /// Vertex id in the viewed graph.
    pub id: u32,
    /// Owning rank.
    pub rank: u32,
    /// The vertex's own bound cost.
    pub cost: MultiBound,
    /// Predecessors as `(vertex id, bound edge cost)`, in the view's
    /// pred order.
    pub preds: &'a [(u32, MultiBound)],
    /// True when the vertex has no successors (it bounds the makespan).
    pub is_sink: bool,
}

/// Walk `view` in topological order, binding every vertex and in-edge
/// cost under `binding`, and hand each lowered vertex to `f`. The pred
/// buffer is reused across vertices — no per-vertex allocation after the
/// first join.
pub fn lower_walk<V: GraphView + ?Sized>(
    view: &V,
    binding: &Binding,
    mut f: impl FnMut(Lowered<'_>),
) {
    let mut buf: Vec<(u32, MultiBound)> = Vec::new();
    for &v in view.topo_order() {
        let vert = view.vertex(v);
        let cost = binding.bind_multi(&vert.cost, vert.rank, vert.rank);
        buf.clear();
        for e in view.preds(v) {
            let urank = view.vertex(e.other).rank;
            buf.push((e.other, binding.bind_multi(&e.cost, urank, vert.rank)));
        }
        f(Lowered {
            id: v,
            rank: vert.rank,
            cost,
            preds: &buf,
            is_sink: view.succs(v).is_empty(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llamp_model::LogGPSParams;
    use llamp_schedgen::{CostExpr, EdgeKind, GraphBuilder, VertexKind};

    #[test]
    fn walk_delivers_topo_order_and_bound_costs() {
        let mut b = GraphBuilder::new(2);
        let a = b.add_vertex(0, VertexKind::Calc, CostExpr::constant(5.0));
        let s = b.add_vertex(
            0,
            VertexKind::Send {
                peer: 1,
                bytes: 8,
                tag: 0,
            },
            CostExpr::o(1.0),
        );
        let r = b.add_vertex(
            1,
            VertexKind::Recv {
                peer: 0,
                bytes: 8,
                tag: 0,
            },
            CostExpr::o(1.0),
        );
        b.add_edge(a, s, EdgeKind::Local, CostExpr::ZERO);
        b.add_edge(s, r, EdgeKind::Comm, CostExpr::wire(8));
        let g = b.finish().unwrap();
        let binding = Binding::uniform(&LogGPSParams::didactic());
        let mut seen = Vec::new();
        lower_walk(&g, &binding, |low| {
            seen.push((low.id, low.preds.len(), low.is_sink));
            if low.id == r {
                assert_eq!(low.preds[0].0, s);
                assert_eq!(low.preds[0].1.l, 1.0);
                assert_eq!(low.preds[0].1.g, 7.0);
            }
        });
        assert_eq!(seen, vec![(a, 0, false), (s, 1, false), (r, 1, true)]);
    }
}

//! The multi-parameter LP: Algorithm 1 generalised so that **all three**
//! sweepable LogGPS parameters — the latency `L`, the per-byte gap `G`
//! and the per-message overhead `o` — are decision variables at once.
//!
//! The construction mirrors [`crate::lp_build::GraphLp`] exactly, except
//! that edge costs enter through [`Binding::bind_multi`]: instead of
//! baking `G` and `o` into row constants, every `≥` constraint carries
//! coefficients `(-m_L, -m_G, -m_o)` on the three parameter columns.
//! Queries pin each parameter with a *lower bound* (never an equality),
//! so the reduced cost of each column is the corresponding sensitivity —
//! `λ_L`, `λ_G` and `λ_o` all fall out of the **same dual solution** of
//! one solve, and per-parameter basis-stability windows come from the
//! same ranging machinery Algorithm 2 uses for `L`.
//!
//! Warm starts work unchanged: a solution's basis outlives bound edits,
//! so a campaign answers one cold anchor per scenario and every grid
//! cross-section — fix all axes but one, step the last — re-seeds from
//! that anchor and re-solves in a handful (usually zero) of pivots.

use crate::binding::{Binding, SweepParam};
use crate::crash::{CrashKind, CrashPlan, CrashRow, NO_BASE};
use crate::lowering::lower_walk;
use llamp_lp::backend::{by_name, Parametric, SolverBackend};
use llamp_lp::{
    resolve_robust, Basis, LpModel, Objective, Relation, Solution, SolveError, SolveStats, VarId,
};
use llamp_schedgen::GraphView;

/// A query point in the three-parameter space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParamPoint {
    /// Network (or per-wire) latency `L` (ns).
    pub l: f64,
    /// Per-byte gap `G` (ns/byte).
    pub g: f64,
    /// Per-message overhead `o` (ns).
    pub o: f64,
}

impl ParamPoint {
    /// The value of one sweep parameter.
    pub fn get(&self, p: SweepParam) -> f64 {
        match p {
            SweepParam::L => self.l,
            SweepParam::G => self.g,
            SweepParam::O => self.o,
        }
    }

    /// Replace the value of one sweep parameter.
    pub fn with(mut self, p: SweepParam, value: f64) -> Self {
        match p {
            SweepParam::L => self.l = value,
            SweepParam::G => self.g = value,
            SweepParam::O => self.o = value,
        }
        self
    }
}

/// Affine running expression `base + c + m·(L,G,o)` for a vertex's
/// completion time while building the LP (Algorithm 1's `Tv`, with the
/// full coefficient vector kept symbolic).
#[derive(Debug, Clone, Copy)]
struct Expr {
    base: Option<VarId>,
    c: f64,
    ml: f64,
    mg: f64,
    mo: f64,
}

/// What a single multi-parameter solve reports: the runtime plus the full
/// sensitivity gradient and per-parameter basis-stability ranges.
#[derive(Debug, Clone, Copy)]
pub struct MultiPrediction {
    /// Predicted runtime `T` (ns).
    pub runtime: f64,
    /// Latency sensitivity `λ_L` (reduced cost of the `L` column).
    pub lambda_l: f64,
    /// Bandwidth sensitivity `λ_G` (reduced cost of the `G` column).
    pub lambda_g: f64,
    /// Overhead sensitivity `λ_o` (reduced cost of the `o` column).
    pub lambda_o: f64,
    /// Basis-stability range of the `L` lower bound (`SALBLow`/`SALBUp`).
    pub l_feasible: (f64, f64),
    /// Basis-stability range of the `G` lower bound.
    pub g_feasible: (f64, f64),
    /// Basis-stability range of the `o` lower bound.
    pub o_feasible: (f64, f64),
    /// Simplex iterations spent.
    pub iterations: u64,
}

impl MultiPrediction {
    /// Sensitivity of one sweep parameter.
    pub fn lambda(&self, p: SweepParam) -> f64 {
        match p {
            SweepParam::L => self.lambda_l,
            SweepParam::G => self.lambda_g,
            SweepParam::O => self.lambda_o,
        }
    }

    /// Basis-stability range of one parameter's lower bound.
    pub fn feasible(&self, p: SweepParam) -> (f64, f64) {
        match p {
            SweepParam::L => self.l_feasible,
            SweepParam::G => self.g_feasible,
            SweepParam::O => self.o_feasible,
        }
    }

    /// The ratio `ρ_X = λ_X · X / T` for one parameter at its query
    /// value: the critical-path share attributable to that parameter.
    pub fn rho(&self, p: SweepParam, value: f64) -> f64 {
        if self.runtime <= 0.0 {
            0.0
        } else {
            self.lambda(p) * value / self.runtime
        }
    }
}

/// The multi-parameter LP form of an execution graph under a binding,
/// paired with the [`SolverBackend`] that answers its queries (same
/// warm-start protocol as [`crate::lp_build::GraphLp`]).
#[derive(Debug)]
pub struct GraphMultiLp {
    model: LpModel,
    l: VarId,
    g: VarId,
    o: VarId,
    t: VarId,
    backend: Box<dyn SolverBackend>,
    /// Crash plan — instantiated into a crash [`Basis`] at each query's
    /// `(L, G, o)` point (see `GraphLp::build_with_backend`).
    plan: CrashPlan,
    /// Which in-edge selection rule instantiates the plan.
    crash_kind: CrashKind,
}

impl GraphMultiLp {
    /// Build with the default solver backend ([`Parametric`], whose
    /// zero-pivot shortcut now covers joint `(L, G, o)` bound moves).
    /// Accepts any [`GraphView`] — raw or reduced graphs alike.
    pub fn build<V: GraphView + ?Sized>(graph: &V, binding: &Binding) -> Self {
        Self::build_with_backend(graph, binding, Box::new(Parametric::default()))
    }

    /// Build with a named solver backend (`"dense"`, `"sparse"`,
    /// `"parametric"` or `"dual"`; see [`by_name`]).
    pub fn build_named<V: GraphView + ?Sized>(
        graph: &V,
        binding: &Binding,
        backend: &str,
    ) -> Option<Self> {
        Some(Self::build_with_backend(graph, binding, by_name(backend)?))
    }

    /// Algorithm 1 with symbolic `(L, G, o)`: one decision variable per
    /// parameter, each edge constraint carrying its full coefficient
    /// vector from [`Binding::bind_multi`]. The crash plan is recorded
    /// exactly as in the single-parameter build, with all three
    /// multipliers kept per row.
    pub fn build_with_backend<V: GraphView + ?Sized>(
        graph: &V,
        binding: &Binding,
        backend: Box<dyn SolverBackend>,
    ) -> Self {
        use llamp_lp::solution::VarStatus;

        let span = llamp_obs::span("lp.lower");
        let mut model = LpModel::new(Objective::Minimize);
        let l = model.add_var("l", 0.0, f64::INFINITY, 0.0);
        let g = model.add_var("g", 0.0, f64::INFINITY, 0.0);
        let o = model.add_var("o", 0.0, f64::INFINITY, 0.0);
        let t = model.add_var("t", f64::NEG_INFINITY, f64::INFINITY, 1.0);
        let mut col_status = vec![
            VarStatus::AtLower,
            VarStatus::AtLower,
            VarStatus::AtLower,
            VarStatus::FreeZero,
        ];
        let mut rows: Vec<CrashRow> = Vec::new();
        let mut has_sink = false;

        let n = graph.num_vertices();
        let mut exprs: Vec<Expr> = vec![
            Expr {
                base: None,
                c: 0.0,
                ml: 0.0,
                mg: 0.0,
                mo: 0.0,
            };
            n
        ];

        // Append the parameter coefficients of an expression to a
        // constraint's term list (negated: y − base − m·(l,g,o) ≥ c).
        let push_coeffs = |terms: &mut Vec<(VarId, f64)>, ml: f64, mg: f64, mo: f64| {
            if ml != 0.0 {
                terms.push((l, -ml));
            }
            if mg != 0.0 {
                terms.push((g, -mg));
            }
            if mo != 0.0 {
                terms.push((o, -mo));
            }
        };

        lower_walk(graph, binding, |low| {
            let v = low.id;
            let vb = low.cost;
            let e = match low.preds.len() {
                0 => Expr {
                    base: None,
                    c: vb.constant,
                    ml: vb.l,
                    mg: vb.g,
                    mo: vb.o,
                },
                1 => {
                    let (p, eb) = low.preds[0];
                    let u = exprs[p as usize];
                    Expr {
                        base: u.base,
                        c: u.c + eb.constant + vb.constant,
                        ml: u.ml + eb.l + vb.l,
                        mg: u.mg + eb.g + vb.g,
                        mo: u.mo + eb.o + vb.o,
                    }
                }
                _ => {
                    let y = model.add_var(format!("y{v}"), f64::NEG_INFINITY, f64::INFINITY, 0.0);
                    col_status.push(VarStatus::Basic);
                    for &(p, eb) in low.preds {
                        let u = exprs[p as usize];
                        // y ≥ base_u + (c_u + ec) + (m_u + em)·(l,g,o)
                        let mut terms = vec![(y, 1.0)];
                        if let Some(b) = u.base {
                            terms.push((b, -1.0));
                        }
                        push_coeffs(&mut terms, u.ml + eb.l, u.mg + eb.g, u.mo + eb.o);
                        let rhs = u.c + eb.constant;
                        model.add_constraint(format!("in{v}_{p}"), &terms, Relation::Ge, rhs);
                        rows.push(CrashRow {
                            target: y.0,
                            base: u.base.map_or(NO_BASE, |b| b.0),
                            c: rhs,
                            ml: u.ml + eb.l,
                            mg: u.mg + eb.g,
                            mo: u.mo + eb.o,
                        });
                    }
                    Expr {
                        base: Some(y),
                        c: vb.constant,
                        ml: vb.l,
                        mg: vb.g,
                        mo: vb.o,
                    }
                }
            };
            exprs[v as usize] = e;

            // Sinks bound the makespan variable: t ≥ Tv.
            if low.is_sink {
                let ex = exprs[v as usize];
                let mut terms = vec![(t, 1.0)];
                if let Some(b) = ex.base {
                    terms.push((b, -1.0));
                }
                push_coeffs(&mut terms, ex.ml, ex.mg, ex.mo);
                model.add_constraint(format!("sink{v}"), &terms, Relation::Ge, ex.c);
                rows.push(CrashRow {
                    target: t.0,
                    base: ex.base.map_or(NO_BASE, |b| b.0),
                    c: ex.c,
                    ml: ex.ml,
                    mg: ex.mg,
                    mo: ex.mo,
                });
                has_sink = true;
            }
        });

        if has_sink {
            col_status[t.0 as usize] = VarStatus::Basic;
        }
        let plan = CrashPlan { col_status, rows };

        let lp = Self {
            model,
            l,
            g,
            o,
            t,
            backend,
            plan,
            crash_kind: CrashKind::default(),
        };
        if llamp_obs::is_enabled() {
            span.field_str("shape", "multi");
            span.field_u64("rows", lp.model.num_constraints() as u64);
            span.field_u64("cols", lp.model.num_vars() as u64);
        }
        lp
    }

    /// The underlying model (for statistics or custom solves).
    pub fn model(&self) -> &LpModel {
        &self.model
    }

    /// Name of the active solver backend.
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// Drop accumulated warm state: the next query seeds the crash basis
    /// at its own `(L, G, o)` point, as a freshly built instance would.
    pub fn reset_backend(&mut self) {
        self.backend.reset();
    }

    /// The crash-basis selection rule in effect (see [`CrashKind`]).
    pub fn crash_kind(&self) -> CrashKind {
        self.crash_kind
    }

    /// Switch the crash-basis selection rule and drop warm state, so the
    /// next query cold-starts under the new rule.
    pub fn set_crash_kind(&mut self, kind: CrashKind) {
        self.crash_kind = kind;
        self.backend.reset();
    }

    /// Instantiate the crash basis at a parameter point (exposed for
    /// conformance tests and benchmarks; queries do this internally).
    pub fn crash_basis(&self, at: ParamPoint) -> Basis {
        self.plan.basis_at(self.crash_kind, at.l, at.g, at.o)
    }

    /// Compute the crash at `at`, seed it if the backend holds no warm
    /// state, and hand it back for the robust-resolve fallback ladder.
    fn arm_crash(&mut self, at: ParamPoint) -> Basis {
        let crash = self.crash_basis(at);
        if self.backend.warm_basis().is_none() {
            self.backend.seed(&crash);
        }
        crash
    }

    /// Cumulative solver-effort counters across every query this instance
    /// has answered.
    pub fn solver_stats(&self) -> SolveStats {
        self.backend.stats()
    }

    /// The basis the backend would warm-start its next query from.
    pub fn warm_basis(&self) -> Option<Basis> {
        self.backend.warm_basis().cloned()
    }

    /// Re-seed the backend's warm state from an explicit basis (e.g. run
    /// every grid point from one anchor optimum).
    pub fn seed_backend(&mut self, basis: &Basis) {
        self.backend.seed(basis);
    }

    /// The decision variable of one sweep parameter.
    pub fn param_var(&self, p: SweepParam) -> VarId {
        match p {
            SweepParam::L => self.l,
            SweepParam::G => self.g,
            SweepParam::O => self.o,
        }
    }

    /// Makespan decision variable.
    pub fn t_var(&self) -> VarId {
        self.t
    }

    /// Solve `min t` with `l ≥ L`, `g ≥ G`, `o ≥ o` and report the
    /// runtime, the full sensitivity gradient and the per-parameter
    /// basis-stability ranges — all from one dual solution.
    pub fn predict(&mut self, at: ParamPoint) -> Result<MultiPrediction, SolveError> {
        self.model.set_var_lb(self.l, at.l);
        self.model.set_var_lb(self.g, at.g);
        self.model.set_var_lb(self.o, at.o);
        self.model.set_sense(Objective::Minimize);
        self.model.set_objective(&[(self.t, 1.0)]);
        let crash = self.arm_crash(at);
        let sol = resolve_robust(self.backend.as_mut(), &self.model, Some(&crash))?;
        Ok(MultiPrediction {
            runtime: sol.objective(),
            lambda_l: sol.reduced_cost(self.l),
            lambda_g: sol.reduced_cost(self.g),
            lambda_o: sol.reduced_cost(self.o),
            l_feasible: sol.lb_range(self.l),
            g_feasible: sol.lb_range(self.g),
            o_feasible: sol.lb_range(self.o),
            iterations: sol.iterations(),
        })
    }

    /// Solve and hand back the raw solution (tight-constraint /
    /// critical-path inspection).
    pub fn solve_raw(&mut self, at: ParamPoint) -> Result<Solution, SolveError> {
        self.model.set_var_lb(self.l, at.l);
        self.model.set_var_lb(self.g, at.g);
        self.model.set_var_lb(self.o, at.o);
        self.model.set_sense(Objective::Minimize);
        self.model.set_objective(&[(self.t, 1.0)]);
        let crash = self.arm_crash(at);
        resolve_robust(self.backend.as_mut(), &self.model, Some(&crash))
    }

    /// Tolerance along one parameter (§II-D2 generalised): maximise that
    /// parameter subject to `t ≤ max_runtime`, the other two pinned at
    /// `at`'s values. Returns `f64::INFINITY` when the runtime never
    /// exceeds the cap and an `Err` when even the floor violates it.
    pub fn tolerance(
        &mut self,
        p: SweepParam,
        at: ParamPoint,
        max_runtime: f64,
    ) -> Result<f64, SolveError> {
        self.model.set_var_lb(self.l, at.l);
        self.model.set_var_lb(self.g, at.g);
        self.model.set_var_lb(self.o, at.o);
        let var = self.param_var(p);
        self.model.set_var_ub(self.t, max_runtime);
        self.model.set_sense(Objective::Maximize);
        self.model.set_objective(&[(var, 1.0)]);
        let crash = self.arm_crash(at);
        let out = match resolve_robust(self.backend.as_mut(), &self.model, Some(&crash)) {
            Ok(sol) => Ok(sol.value(var)),
            Err(SolveError::Unbounded) => Ok(f64::INFINITY),
            Err(e) => Err(e),
        };
        // Restore the prediction shape.
        self.model.set_var_ub(self.t, f64::INFINITY);
        self.model.set_sense(Objective::Minimize);
        self.model.set_objective(&[(self.t, 1.0)]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::Binding;
    use crate::eval::evaluate_multi;
    use crate::lp_build::GraphLp;
    use llamp_model::LogGPSParams;
    use llamp_schedgen::{build_graph, ExecGraph, GraphConfig};
    use llamp_trace::{ProgramSet, TracerConfig};
    use llamp_util::time::us;

    fn running_example(c0_us: f64) -> ExecGraph {
        let set = ProgramSet::spmd(2, |rank, b| {
            if rank == 0 {
                b.comp(us(c0_us));
                b.send(1, 4, 0);
                b.comp(us(1.0));
            } else {
                b.comp(us(0.5));
                b.recv(0, 4, 0);
                b.comp(us(1.0));
            }
        });
        build_graph(&set.trace(&TracerConfig::default()), &GraphConfig::eager())
            .unwrap()
            .contracted()
    }

    fn didactic() -> (Binding, ParamPoint) {
        let p = LogGPSParams::didactic();
        (
            Binding::uniform(&p),
            ParamPoint {
                l: p.l,
                g: p.big_g,
                o: p.o,
            },
        )
    }

    #[test]
    fn matches_single_parameter_lp_at_base_point() {
        let g = running_example(0.1);
        let (binding, base) = didactic();
        let mut multi = GraphMultiLp::build(&g, &binding);
        let mut single = GraphLp::build(&g, &binding);
        for l in [0.0, 200.0, 385.0, 500.0, 2_000.0] {
            let a = multi.predict(base.with(SweepParam::L, l)).unwrap();
            let b = single.predict(l).unwrap();
            assert!(
                (a.runtime - b.runtime).abs() < 1e-9 * (1.0 + b.runtime),
                "L={l}: {} vs {}",
                a.runtime,
                b.runtime
            );
            assert!((a.lambda_l - b.lambda).abs() < 1e-9, "L={l}");
        }
    }

    #[test]
    fn gradient_matches_direct_evaluation() {
        let set = ProgramSet::spmd(4, |rank, b| {
            b.comp(us(3.0) * (rank + 1) as f64);
            b.allreduce(512);
            b.comp(us(1.0));
            b.barrier();
        });
        let g = build_graph(&set.trace(&TracerConfig::default()), &GraphConfig::eager())
            .unwrap()
            .contracted();
        let params = LogGPSParams::cscs_testbed(4).with_o(us(1.0));
        let binding = Binding::uniform(&params);
        let mut lp = GraphMultiLp::build(&g, &binding);
        for (l, gap, o) in [
            (0.0, 0.018, 1_000.0),
            (3_000.0, 0.018, 1_000.0),
            (50_000.0, 0.5, 2_000.0),
            (3_000.0, 2.0, 500.0),
        ] {
            let p = lp.predict(ParamPoint { l, g: gap, o }).unwrap();
            let e = evaluate_multi(&g, &binding, l, gap, o);
            assert!(
                (p.runtime - e.runtime).abs() < 1e-6 * (1.0 + e.runtime),
                "({l},{gap},{o}): lp {} vs eval {}",
                p.runtime,
                e.runtime
            );
            assert!(
                (p.lambda_l - e.lambda_l).abs() < 1e-6,
                "λ_L at ({l},{gap},{o})"
            );
            assert!(
                (p.lambda_g - e.lambda_g).abs() < 1e-6,
                "λ_G at ({l},{gap},{o})"
            );
            assert!(
                (p.lambda_o - e.lambda_o).abs() < 1e-6,
                "λ_o at ({l},{gap},{o})"
            );
        }
    }

    #[test]
    fn stability_window_step_is_exactly_linear() {
        // Inside the reported per-parameter stability window the basis is
        // unchanged, so T moves exactly linearly with slope λ — the dual
        // certificate for λ_G and λ_o.
        let g = running_example(0.1);
        let (binding, base) = didactic();
        let mut lp = GraphMultiLp::build(&g, &binding);
        let at = base.with(SweepParam::L, 500.0);
        let p0 = lp.predict(at).unwrap();
        for param in SweepParam::ALL {
            let (lo, hi) = p0.feasible(param);
            let x0 = at.get(param);
            // Step halfway to the window edge (bounded to stay finite).
            let step_up = if hi.is_finite() { (hi - x0) / 2.0 } else { 1.0 };
            if step_up > 0.0 {
                let p1 = lp.predict(at.with(param, x0 + step_up)).unwrap();
                let want = p0.runtime + p0.lambda(param) * step_up;
                assert!(
                    (p1.runtime - want).abs() < 1e-7 * (1.0 + want.abs()),
                    "{param}: {} vs {}",
                    p1.runtime,
                    want
                );
            }
            let _ = lo;
            let p_back = lp.predict(at).unwrap();
            assert!((p_back.runtime - p0.runtime).abs() < 1e-9);
        }
    }

    #[test]
    fn tolerance_along_each_parameter() {
        let g = running_example(0.1);
        let (binding, base) = didactic();
        let mut lp = GraphMultiLp::build(&g, &binding);
        let at = base.with(SweepParam::L, 0.0);
        // Fig. 6: max L s.t. T ≤ 2 µs is 0.885 µs (G, o at base).
        let tol_l = lp.tolerance(SweepParam::L, at, 2_000.0).unwrap();
        assert!((tol_l - 885.0).abs() < 1e-6, "{tol_l}");
        // The prediction shape is restored afterwards.
        let p = lp.predict(at).unwrap();
        assert!((p.runtime - 1_500.0).abs() < 1e-6);
        // G tolerance: a cap above the G-free runtime admits a positive
        // per-byte gap; the runtime at the tolerance hits the cap.
        let tol_g = lp.tolerance(SweepParam::G, at, 2_000.0).unwrap();
        assert!(tol_g > 0.0);
        if tol_g.is_finite() {
            let e = evaluate_multi(&g, &binding, at.l, tol_g, at.o);
            assert!((e.runtime - 2_000.0).abs() < 1e-6 * 2_000.0);
        }
    }

    #[test]
    fn all_backends_agree_bitwise() {
        let g = running_example(0.1);
        let (binding, base) = didactic();
        let mut reference: Option<MultiPrediction> = None;
        for name in llamp_lp::backend::BACKEND_NAMES {
            let mut lp = GraphMultiLp::build_named(&g, &binding, name).unwrap();
            let p = lp
                .predict(base.with(SweepParam::L, 500.0).with(SweepParam::G, 5.0))
                .unwrap();
            if let Some(r) = &reference {
                assert_eq!(p.runtime.to_bits(), r.runtime.to_bits(), "{name}");
                assert_eq!(p.lambda_l.to_bits(), r.lambda_l.to_bits(), "{name}");
                assert_eq!(p.lambda_g.to_bits(), r.lambda_g.to_bits(), "{name}");
                assert_eq!(p.lambda_o.to_bits(), r.lambda_o.to_bits(), "{name}");
            } else {
                reference = Some(p);
            }
        }
    }
}

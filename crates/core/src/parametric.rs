//! Parametric critical-path analysis: the exact value function `T(L)` over
//! a latency window.
//!
//! The paper dismisses exhaustive path enumeration ("generally
//! intractable") and plain dynamic programming (hours on a 500K-vertex
//! LULESH graph, §II-C) and leans on the LP solver plus Algorithm 2 to
//! explore an interval. This backend is this workspace's answer to the
//! same problem and its analogue of "presolve + barrier make the LP fast":
//! a DP over *windowed upper envelopes*. Each vertex carries the convex
//! envelope of `a·L + C` over all incoming paths, **clipped to the window
//! of interest** — pruning every line that cannot win inside
//! `[l_min, l_max]`. In practice per-vertex envelopes stay tiny (a handful
//! of lines), giving near-linear time and the complete `T(L)` curve —
//! every critical latency, `λ_L(L)` and exact tolerances — in one pass,
//! with no per-`L` re-solves.
//!
//! Cross-validated against the LP backend and direct evaluation in the
//! test suite.

use crate::binding::Binding;
use crate::lowering::lower_walk;
use llamp_lp::piecewise::{Envelope, Invert, Line};
use llamp_schedgen::GraphView;

/// The exact runtime curve of a graph over a latency window.
#[derive(Debug, Clone)]
pub struct ParametricProfile {
    window: (f64, f64),
    envelope: Envelope,
    /// Largest per-vertex envelope width observed (diagnostic).
    pub max_envelope_width: usize,
}

impl ParametricProfile {
    /// Run the windowed-envelope DP. `window` is the latency interval the
    /// curve must be exact on. Accepts any [`GraphView`] — raw or
    /// reduced graphs alike.
    pub fn compute<V: GraphView + ?Sized>(
        graph: &V,
        binding: &Binding,
        window: (f64, f64),
    ) -> Self {
        assert!(window.0 <= window.1, "empty latency window");
        let (lo, hi) = window;
        let n = graph.num_vertices();
        let mut envs: Vec<Option<Envelope>> = vec![None; n];
        let mut remaining: Vec<u32> = (0..n as u32).map(|v| graph.succs(v).len() as u32).collect();
        let mut global: Option<Envelope> = None;
        let mut max_width = 0usize;

        lower_walk(graph, binding, |low| {
            let v = low.id;
            let (vc, vm) = binding.project(low.cost);
            let env: Envelope = if low.preds.is_empty() {
                Envelope::from_line(Line::new(vm, vc))
            } else {
                let mut lines: Vec<Line> = Vec::new();
                for &(p, eb) in low.preds {
                    let (ec, em) = binding.project(eb);
                    let upstream = envs[p as usize]
                        .as_ref()
                        .expect("topological order guarantees predecessor envelopes");
                    for line in upstream.lines() {
                        lines.push(Line::new(line.slope + em + vm, line.intercept + ec + vc));
                    }
                    // Release predecessor storage once all consumers ran.
                    let r = &mut remaining[p as usize];
                    *r -= 1;
                    if *r == 0 {
                        envs[p as usize] = None;
                    }
                }
                let mut e = Envelope::from_lines(lines);
                e.clip(lo, hi);
                e
            };
            max_width = max_width.max(env.len());
            if low.is_sink {
                global = Some(match global.take() {
                    None => env.clone(),
                    Some(g) => {
                        let mut m = g.max_with(&env);
                        m.clip(lo, hi);
                        m
                    }
                });
            }
            envs[v as usize] = Some(env);
        });

        let mut envelope = global.unwrap_or_else(Envelope::zero);
        envelope.clip(lo, hi);
        Self {
            window,
            envelope,
            max_envelope_width: max_width,
        }
    }

    /// The latency window the profile is exact on.
    pub fn window(&self) -> (f64, f64) {
        self.window
    }

    /// The `T(L)` envelope itself.
    pub fn envelope(&self) -> &Envelope {
        &self.envelope
    }

    /// Predicted runtime at latency `l` (ns). `l` should lie inside the
    /// window.
    pub fn runtime(&self, l: f64) -> f64 {
        debug_assert!(l >= self.window.0 - 1e-9 && l <= self.window.1 + 1e-9);
        self.envelope.eval(l)
    }

    /// Latency sensitivity `λ_L(l)` — the right derivative of `T`.
    pub fn lambda(&self, l: f64) -> f64 {
        self.envelope.slope_at(l)
    }

    /// Latency ratio `ρ_L(l) = λ_L·l / T(l)`.
    pub fn rho(&self, l: f64) -> f64 {
        let t = self.runtime(l);
        if t <= 0.0 {
            0.0
        } else {
            self.lambda(l) * l / t
        }
    }

    /// All critical latencies inside the window, ascending.
    pub fn critical_latencies(&self) -> Vec<f64> {
        self.envelope
            .breakpoints()
            .into_iter()
            .filter(|&x| x >= self.window.0 && x <= self.window.1)
            .collect()
    }

    /// The largest latency keeping `T(l) ≤ max_runtime`, clamped to the
    /// window. `None` when even `l = l_min` violates the cap;
    /// `Some(window.1)` when the cap is never reached inside the window.
    pub fn tolerance(&self, max_runtime: f64) -> Option<f64> {
        match self.envelope.invert_below(max_runtime) {
            Invert::Always => Some(self.window.1),
            Invert::Never => None,
            Invert::At(x) => {
                if x < self.window.0 {
                    None
                } else {
                    Some(x.min(self.window.1))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::Binding;
    use crate::eval::evaluate;
    use crate::lp_build::GraphLp;
    use llamp_model::LogGPSParams;
    use llamp_schedgen::{build_graph, ExecGraph, GraphConfig};
    use llamp_trace::{ProgramSet, TracerConfig};
    use llamp_util::time::us;

    fn running_example() -> ExecGraph {
        let set = ProgramSet::spmd(2, |rank, b| {
            if rank == 0 {
                b.comp(100.0);
                b.send(1, 4, 0);
                b.comp(us(1.0));
            } else {
                b.comp(us(0.5));
                b.recv(0, 4, 0);
                b.comp(us(1.0));
            }
        });
        build_graph(&set.trace(&TracerConfig::default()), &GraphConfig::eager()).unwrap()
    }

    fn didactic() -> Binding {
        Binding::uniform(&LogGPSParams::didactic())
    }

    #[test]
    fn running_example_full_curve() {
        let g = running_example();
        let prof = ParametricProfile::compute(&g, &didactic(), (0.0, 2_000.0));
        // One breakpoint at 0.385 µs.
        let lcs = prof.critical_latencies();
        assert_eq!(lcs.len(), 1, "{lcs:?}");
        assert!((lcs[0] - 385.0).abs() < 1e-9);
        // Values and slopes on both sides.
        assert!((prof.runtime(200.0) - 1_500.0).abs() < 1e-9);
        assert!((prof.runtime(500.0) - 1_615.0).abs() < 1e-9);
        assert_eq!(prof.lambda(200.0), 0.0);
        assert_eq!(prof.lambda(500.0), 1.0);
        // Tolerance at cap 2 µs: 0.885 µs (Fig. 6).
        let tol = prof.tolerance(2_000.0).unwrap();
        assert!((tol - 885.0).abs() < 1e-9);
    }

    #[test]
    fn agrees_with_eval_and_lp_on_collective_workload() {
        let set = ProgramSet::spmd(8, |rank, b| {
            b.comp(us(2.0) * ((rank % 3) + 1) as f64);
            b.allreduce(128);
            b.comp(us(4.0));
            b.barrier();
            b.bcast(4096, 2);
        });
        let g = build_graph(&set.trace(&TracerConfig::default()), &GraphConfig::eager())
            .unwrap()
            .contracted();
        let params = LogGPSParams::cscs_testbed(8).with_o(us(1.5));
        let binding = Binding::uniform(&params);
        let prof = ParametricProfile::compute(&g, &binding, (0.0, us(200.0)));
        let mut lp = GraphLp::build(&g, &binding);
        for l in [0.0, us(0.5), us(3.0), us(17.0), us(60.0), us(180.0)] {
            let e = evaluate(&g, &binding, l);
            let p = lp.predict(l).unwrap();
            assert!(
                (prof.runtime(l) - e.runtime).abs() < 1e-6 * (1.0 + e.runtime),
                "L={l}: envelope {} vs eval {}",
                prof.runtime(l),
                e.runtime
            );
            assert!(
                (prof.runtime(l) - p.runtime).abs() < 1e-6 * (1.0 + p.runtime),
                "L={l}: envelope {} vs LP {}",
                prof.runtime(l),
                p.runtime
            );
            // At a breakpoint the LP may report any subgradient; the
            // envelope's left/right slopes bracket it.
            let left = prof.lambda((l - 1.0).max(0.0));
            let right = prof.lambda(l + 1.0);
            assert!(
                p.lambda >= left - 1e-6 && p.lambda <= right + 1e-6,
                "L={l}: λ_lp {} outside [{left}, {right}]",
                p.lambda
            );
        }
    }

    #[test]
    fn critical_latencies_match_algorithm2() {
        let set = ProgramSet::spmd(4, |rank, b| {
            b.comp(us(1.0) * (rank + 1) as f64);
            b.allreduce(64);
            b.comp(us(2.0));
            b.allreduce(64);
        });
        let g = build_graph(&set.trace(&TracerConfig::default()), &GraphConfig::eager())
            .unwrap()
            .contracted();
        let params = LogGPSParams::cscs_testbed(4).with_o(200.0);
        let binding = Binding::uniform(&params);
        let prof = ParametricProfile::compute(&g, &binding, (0.0, us(20.0)));
        let exact = prof.critical_latencies();
        let mut lp = GraphLp::build(&g, &binding);
        let alg2 = lp.critical_latencies(0.0, us(20.0), us(1.0), 0.5).unwrap();
        // Algorithm 2 must find each exact breakpoint (within its eps).
        for bp in &exact {
            assert!(
                alg2.iter().any(|x| (x - bp).abs() < 1.0),
                "missing breakpoint {bp} in {alg2:?} (exact {exact:?})"
            );
        }
    }

    #[test]
    fn lambda_is_monotone_in_l() {
        // Convexity: λ_L never decreases as L grows (paper §II-B: "As L
        // increases, more communication edges that cannot be overlapped
        // will lead to an increase in λ_L").
        let set = ProgramSet::spmd(4, |rank, b| {
            for i in 0..5 {
                b.comp(us(1.0) * ((rank + i) % 4) as f64);
                b.allreduce(64);
            }
        });
        let g = build_graph(&set.trace(&TracerConfig::default()), &GraphConfig::eager())
            .unwrap()
            .contracted();
        let binding = Binding::uniform(&LogGPSParams::cscs_testbed(4).with_o(100.0));
        let prof = ParametricProfile::compute(&g, &binding, (0.0, us(50.0)));
        let mut prev = -1.0;
        for i in 0..100 {
            let l = us(0.5) * i as f64;
            let lam = prof.lambda(l);
            assert!(lam >= prev - 1e-9, "λ decreased at L={l}");
            prev = lam;
        }
    }

    #[test]
    fn window_clipping_is_exact_inside() {
        let g = running_example();
        let wide = ParametricProfile::compute(&g, &didactic(), (0.0, 10_000.0));
        let narrow = ParametricProfile::compute(&g, &didactic(), (300.0, 600.0));
        for i in 0..=30 {
            let l = 300.0 + 10.0 * i as f64;
            assert!((wide.runtime(l) - narrow.runtime(l)).abs() < 1e-9, "L={l}");
        }
    }
}

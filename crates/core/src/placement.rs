//! LP-guided rank placement (Appendix J, Algorithm 3) and baselines.
//!
//! The placement problem: map `P` ranks onto processor slots grouped into
//! nodes, where intra-node latency is far below inter-node latency
//! (heterogeneity expressed through the HLogGP matrices of Appendix I).
//! The paper's heuristic refines an initial mapping iteratively: solve the
//! model, read the pairwise sensitivity matrices `D_L`/`D_G` off the
//! critical path, swap the rank pair with the highest predicted gain, and
//! stop when no positive-gain swap exists or the objective worsens.
//!
//! Baselines:
//! * **block** — consecutive ranks fill nodes in order (the MPI default
//!   the paper compares against),
//! * **round-robin** — consecutive ranks scatter across nodes,
//! * **random** — seeded shuffle,
//! * **volume-greedy** — a Scotch-like static mapping from total traffic
//!   volume only (no temporal information), the paper's second baseline.

use crate::binding::Binding;
use crate::eval::{evaluate, pair_sensitivities};
use llamp_model::LogGPSParams;
use llamp_schedgen::{EdgeKind, ExecGraph, VertexKind};
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A cluster of identical nodes with uniform intra-/inter-node latency.
#[derive(Debug, Clone, Copy)]
pub struct Machine {
    /// Number of nodes.
    pub nodes: u32,
    /// Processor slots per node.
    pub slots_per_node: u32,
    /// Latency between slots on the same node (ns).
    pub intra_l: f64,
    /// Latency between slots on different nodes (ns).
    pub inter_l: f64,
}

impl Machine {
    /// Total slots.
    pub fn slots(&self) -> u32 {
        self.nodes * self.slots_per_node
    }

    /// Node of a slot.
    pub fn node_of(&self, slot: u32) -> u32 {
        slot / self.slots_per_node
    }

    /// Latency between two slots.
    pub fn latency(&self, a: u32, b: u32) -> f64 {
        if a == b {
            0.0
        } else if self.node_of(a) == self.node_of(b) {
            self.intra_l
        } else {
            self.inter_l
        }
    }

    /// The heterogeneous binding induced by a rank→slot mapping.
    pub fn binding(&self, params: &LogGPSParams, mapping: &[u32]) -> Binding {
        let latencies = crate::binding::PairTable::from_fn(mapping.len() as u32, |i, j| {
            self.latency(mapping[i as usize], mapping[j as usize])
        });
        Binding {
            o: params.o,
            big_g: params.big_g,
            latency: crate::binding::LatencyModel::PairwiseConstant { latencies },
            variable: crate::binding::AnalysisVariable::Latency,
        }
    }
}

/// Predicted runtime of the graph under a mapping.
pub fn evaluate_mapping(
    graph: &ExecGraph,
    machine: &Machine,
    params: &LogGPSParams,
    mapping: &[u32],
) -> f64 {
    let binding = machine.binding(params, mapping);
    evaluate(graph, &binding, 0.0).runtime
}

/// Block mapping: rank `r` on slot `r`.
pub fn block_mapping(nranks: u32) -> Vec<u32> {
    (0..nranks).collect()
}

/// Round-robin mapping: consecutive ranks scatter across nodes.
pub fn round_robin_mapping(nranks: u32, machine: &Machine) -> Vec<u32> {
    assert!(nranks <= machine.slots());
    let mut used = vec![0u32; machine.nodes as usize];
    (0..nranks)
        .map(|r| {
            let node = r % machine.nodes;
            let slot = node * machine.slots_per_node + used[node as usize];
            used[node as usize] += 1;
            slot
        })
        .collect()
}

/// Seeded random mapping.
pub fn random_mapping(nranks: u32, machine: &Machine, seed: u64) -> Vec<u32> {
    assert!(nranks <= machine.slots());
    let mut slots: Vec<u32> = (0..machine.slots()).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    slots.shuffle(&mut rng);
    slots.truncate(nranks as usize);
    slots
}

/// Total traffic volume (bytes) between rank pairs across the whole graph
/// — what Scotch-style volume partitioners consume.
pub fn traffic_matrix(graph: &ExecGraph) -> Vec<f64> {
    let p = graph.nranks() as usize;
    let mut vol = vec![0.0f64; p * p];
    for v in 0..graph.num_vertices() as u32 {
        if let VertexKind::Send { peer, bytes, .. } = graph.vertex(v).kind {
            // Count every lowered message once at its send vertex.
            if graph
                .succs(v)
                .iter()
                .any(|e| matches!(e.kind, EdgeKind::Comm | EdgeKind::Rendezvous))
            {
                let a = graph.vertex(v).rank as usize;
                let b = peer as usize;
                vol[a * p + b] += bytes as f64;
                vol[b * p + a] += bytes as f64;
            }
        }
    }
    vol
}

/// Scotch-like volume-greedy mapping: agglomerate the heaviest
/// communicating rank pairs into node-sized groups, ignoring temporal
/// behaviour (the paper's explanation for Scotch's weakness on ICON,
/// Appendix J-A).
pub fn volume_greedy_mapping(graph: &ExecGraph, machine: &Machine) -> Vec<u32> {
    let p = graph.nranks() as usize;
    assert!(p as u32 <= machine.slots());
    let vol = traffic_matrix(graph);
    let cap = machine.slots_per_node as usize;

    // Union-find with size caps.
    let mut parent: Vec<usize> = (0..p).collect();
    let mut size = vec![1usize; p];
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut r = x;
        while parent[r] != r {
            r = parent[r];
        }
        let mut c = x;
        while parent[c] != r {
            let n = parent[c];
            parent[c] = r;
            c = n;
        }
        r
    }

    let mut pairs: Vec<(f64, usize, usize)> = Vec::new();
    for i in 0..p {
        for j in (i + 1)..p {
            let v = vol[i * p + j];
            if v > 0.0 {
                pairs.push((v, i, j));
            }
        }
    }
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    for (_, i, j) in pairs {
        let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
        if ri != rj && size[ri] + size[rj] <= cap {
            parent[rj] = ri;
            size[ri] += size[rj];
        }
    }

    // Pack groups onto nodes first-fit by descending size.
    let mut groups: llamp_util::FxHashMap<usize, Vec<usize>> = llamp_util::FxHashMap::default();
    for r in 0..p {
        let root = find(&mut parent, r);
        groups.entry(root).or_default().push(r);
    }
    let mut group_list: Vec<Vec<usize>> = groups.into_values().collect();
    group_list.sort_by_key(|g| std::cmp::Reverse(g.len()));
    let mut node_used = vec![0usize; machine.nodes as usize];
    let mut mapping = vec![u32::MAX; p];
    for group in group_list {
        let node = (0..machine.nodes as usize)
            .find(|&n| node_used[n] + group.len() <= cap)
            .expect("groups fit by construction");
        for r in group {
            mapping[r] = (node as u32) * machine.slots_per_node + node_used[node] as u32;
            node_used[node] += 1;
        }
    }
    mapping
}

/// Outcome of the iterative placement refinement.
#[derive(Debug, Clone)]
pub struct PlacementOutcome {
    /// Final rank→slot mapping.
    pub mapping: Vec<u32>,
    /// Predicted runtime of the final mapping (ns).
    pub runtime: f64,
    /// Predicted runtime of the initial mapping (ns).
    pub initial_runtime: f64,
    /// Accepted swaps.
    pub swaps: usize,
}

/// Algorithm 3: LP/sensitivity-guided pairwise-swap refinement.
pub fn llamp_placement(
    graph: &ExecGraph,
    machine: &Machine,
    params: &LogGPSParams,
    initial: Vec<u32>,
) -> PlacementOutcome {
    let p = graph.nranks() as usize;
    assert_eq!(initial.len(), p);
    let mut pi = initial;
    let initial_runtime = evaluate_mapping(graph, machine, params, &pi);
    let mut best = initial_runtime;
    let mut swaps = 0usize;
    // Bound iterations defensively; the objective check terminates far
    // earlier in practice.
    for _ in 0..(4 * p.max(4)) {
        let binding = machine.binding(params, &pi);
        let eval = evaluate(graph, &binding, 0.0);
        let ds = pair_sensitivities(graph, &eval);

        // Estimated gain of swapping ranks i and j: the change in
        // latency-weighted critical-path cost against all other ranks.
        let mut best_gain = 0.0f64;
        let mut best_pair: Option<(usize, usize)> = None;
        for i in 0..p {
            for j in (i + 1)..p {
                let mut gain = 0.0;
                for k in 0..p {
                    if k == i || k == j {
                        continue;
                    }
                    let lam_ik = ds.lambda_at(i as u32, k as u32);
                    let lam_jk = ds.lambda_at(j as u32, k as u32);
                    if lam_ik == 0.0 && lam_jk == 0.0 {
                        continue;
                    }
                    let l_ik = machine.latency(pi[i], pi[k]);
                    let l_jk = machine.latency(pi[j], pi[k]);
                    // After the swap, rank i sits on slot π(j) and vice
                    // versa.
                    let l_ik_new = machine.latency(pi[j], pi[k]);
                    let l_jk_new = machine.latency(pi[i], pi[k]);
                    gain += lam_ik * (l_ik - l_ik_new) + lam_jk * (l_jk - l_jk_new);
                }
                if gain > best_gain {
                    best_gain = gain;
                    best_pair = Some((i, j));
                }
            }
        }

        let Some((i, j)) = best_pair else {
            break; // no positive-gain swap (termination 1)
        };
        pi.swap(i, j);
        let f = evaluate_mapping(graph, machine, params, &pi);
        if f < best - 1e-9 {
            best = f;
            swaps += 1;
        } else {
            pi.swap(i, j); // revert and stop (termination 2)
            break;
        }
    }

    PlacementOutcome {
        runtime: best,
        initial_runtime,
        mapping: pi,
        swaps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llamp_schedgen::{build_graph, GraphConfig};
    use llamp_trace::{ProgramSet, TracerConfig};
    use llamp_util::time::us;

    fn machine() -> Machine {
        Machine {
            nodes: 2,
            slots_per_node: 2,
            intra_l: 200.0,
            inter_l: 3_000.0,
        }
    }

    /// Ranks 0↔2 and 1↔3 chat heavily; block placement puts the chatty
    /// pairs on different nodes, so a smarter placement must win. Note:
    /// *not* contracted — `traffic_matrix` needs the send vertices.
    fn pairwise_heavy_graph() -> ExecGraph {
        let set = ProgramSet::spmd(4, |rank, b| {
            let peer = match rank {
                0 => 2,
                2 => 0,
                1 => 3,
                _ => 1,
            };
            for i in 0..20 {
                b.comp(500.0);
                if rank < peer {
                    b.send(peer, 1024, i);
                    b.recv(peer, 1024, 1000 + i);
                } else {
                    b.recv(peer, 1024, i);
                    b.send(peer, 1024, 1000 + i);
                }
            }
        });
        build_graph(&set.trace(&TracerConfig::default()), &GraphConfig::eager()).unwrap()
    }

    fn params() -> LogGPSParams {
        LogGPSParams::cscs_testbed(4).with_o(100.0)
    }

    #[test]
    fn mappings_are_valid_permutations() {
        let m = machine();
        for mapping in [
            block_mapping(4),
            round_robin_mapping(4, &m),
            random_mapping(4, &m, 7),
        ] {
            let mut sorted = mapping.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 4, "{mapping:?}");
            assert!(mapping.iter().all(|&s| s < m.slots()));
        }
    }

    #[test]
    fn llamp_placement_beats_block_on_adversarial_pattern() {
        let g = pairwise_heavy_graph();
        let m = machine();
        let p = params();
        let out = llamp_placement(&g, &m, &p, block_mapping(4));
        assert!(
            out.runtime < out.initial_runtime,
            "no improvement: {} -> {}",
            out.initial_runtime,
            out.runtime
        );
        // The chatty pairs must land on shared nodes.
        assert_eq!(m.node_of(out.mapping[0]), m.node_of(out.mapping[2]));
        assert_eq!(m.node_of(out.mapping[1]), m.node_of(out.mapping[3]));
    }

    #[test]
    fn volume_greedy_groups_heavy_pairs() {
        let g = pairwise_heavy_graph();
        let m = machine();
        let mapping = volume_greedy_mapping(&g, &m);
        assert_eq!(m.node_of(mapping[0]), m.node_of(mapping[2]));
        assert_eq!(m.node_of(mapping[1]), m.node_of(mapping[3]));
    }

    #[test]
    fn traffic_matrix_is_symmetric_and_counts_bytes() {
        let g = pairwise_heavy_graph();
        let vol = traffic_matrix(&g);
        let p = 4usize;
        for i in 0..p {
            for j in 0..p {
                assert_eq!(vol[i * p + j], vol[j * p + i]);
            }
        }
        // 20 iterations x 2 directions x 1024 bytes between 0 and 2.
        assert_eq!(vol[2], 2.0 * 20.0 * 1024.0);
        assert_eq!(vol[1], 0.0); // ranks 0 and 1 never talk
    }

    #[test]
    fn placement_on_balanced_pattern_terminates_without_gain() {
        // Allreduce-only job: every mapping is symmetric, no swap helps.
        let set = ProgramSet::spmd(4, |_, b| {
            for _ in 0..5 {
                b.comp(us(1.0));
                b.allreduce(64);
            }
        });
        let g = build_graph(&set.trace(&TracerConfig::default()), &GraphConfig::eager())
            .unwrap()
            .contracted();
        let out = llamp_placement(&g, &machine(), &params(), block_mapping(4));
        // Must terminate and never *worsen* the initial mapping.
        assert!(out.runtime <= out.initial_runtime + 1e-9);
    }

    #[test]
    fn evaluate_mapping_prefers_colocated_heavy_pairs() {
        let g = pairwise_heavy_graph();
        let m = machine();
        let p = params();
        // Good: 0,2 on node 0; 1,3 on node 1.
        let good = vec![0, 2, 1, 3];
        let bad = vec![0, 1, 2, 3];
        assert!(
            evaluate_mapping(&g, &m, &p, &good) < evaluate_mapping(&g, &m, &p, &bad),
            "colocated pairs should be faster"
        );
    }
}

#![deny(missing_docs)]
//! # llamp-obs — zero-overhead-when-off tracing, metrics and profiling
//!
//! A hand-rolled span/metrics core for the LLAMP pipeline (the registry
//! is unreachable in this build environment, so no `tracing` /
//! `metrics` crates — same shim philosophy as `crates/shims`). Three
//! primitives:
//!
//! * **spans** — hierarchical timed regions with structured key/value
//!   fields, opened with [`span()`] (or the [`span!`] macro) and closed by
//!   RAII guard drop. Per-thread buffers collect closed spans and drain
//!   into the global recorder whenever a thread's root span closes, so
//!   workers never contend mid-task.
//! * **metrics** — monotonic [`counter`]s, last-write-wins [`gauge`]s and
//!   HDR-style log-bucketed [`Histogram`]s ([`observe_ns`] / [`time`])
//!   in a thread-safe registry.
//! * **exporters** — [`take`] drains everything into a [`Snapshot`],
//!   which renders as a human-readable aggregate tree
//!   ([`Summary::render`]) or a `chrome://tracing` JSON file
//!   ([`Snapshot::chrome_trace_json`]).
//!
//! ## The off switch is the design
//!
//! Recording is globally disabled by default. Every entry point loads
//! one relaxed atomic and returns: no clock read, no allocation, no
//! lock. [`span()`] returns an inert guard, [`counter`]/[`observe_ns`]
//! return before touching the registry, and [`time`] runs its closure
//! untimed. The LP crate's counting-allocator harness
//! (`crates/lp/tests/alloc_count.rs`) certifies that the instrumented
//! simplex hot loop stays zero-allocation with recording off.
//!
//! ## Determinism contract
//!
//! Telemetry is strictly *out-of-band*: nothing recorded here may enter
//! results JSON, cache keys or any other deterministic artifact.
//! Enabling or disabling recording must never change a computed result
//! — the engine's integration tests run the full campaign pipeline both
//! ways and require byte-identical output (see
//! `docs/OBSERVABILITY.md`).
//!
//! ## Usage
//!
//! ```
//! llamp_obs::enable();
//! {
//!     let s = llamp_obs::span("solve");
//!     s.field_u64("iterations", 42);
//!     llamp_obs::counter("cache.pt.hit", 1);
//!     llamp_obs::observe_ns("solve.point_ns", 1_500);
//! }
//! let snapshot = llamp_obs::take();
//! llamp_obs::disable();
//! assert_eq!(snapshot.events.len(), 1);
//! let tree = snapshot.summary().render();
//! assert!(tree.contains("solve"));
//! ```

pub mod hist;
pub mod report;

pub use hist::{Histogram, HistogramSummary};
pub use report::{Snapshot, SpanAgg, SpanEvent, Summary};

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// A structured span field value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer (counts, sizes).
    U64(u64),
    /// Float (rates, drifts).
    F64(f64),
    /// Short label (backend names, workload names).
    Str(String),
}

// ---------------------------------------------------------------------
// Global recorder state.
// ---------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
/// Bumped by `enable()`; thread-local buffers from an older generation
/// are discarded on first use instead of leaking stale frames in.
static GENERATION: AtomicU32 = AtomicU32::new(0);
static NEXT_TID: AtomicU32 = AtomicU32::new(1);

/// Epoch for all timestamps. Set once per process so Chrome-trace
/// timestamps stay monotone across enable/disable cycles.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

#[derive(Default)]
struct Sink {
    events: Vec<SpanEvent>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, Histogram>,
}

fn sink() -> &'static Mutex<Sink> {
    static SINK: OnceLock<Mutex<Sink>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(Sink::default()))
}

struct OpenFrame {
    name: &'static str,
    path: String,
    start_ns: u64,
    fields: Vec<(&'static str, FieldValue)>,
}

struct ThreadBuf {
    generation: u32,
    tid: u32,
    stack: Vec<OpenFrame>,
    done: Vec<SpanEvent>,
}

thread_local! {
    static LOCAL: RefCell<ThreadBuf> = const {
        RefCell::new(ThreadBuf {
            generation: 0,
            tid: 0,
            stack: Vec::new(),
            done: Vec::new(),
        })
    };
}

/// Turn recording on (clearing anything a previous session left behind).
pub fn enable() {
    {
        let mut s = sink().lock().expect("obs sink");
        *s = Sink::default();
    }
    GENERATION.fetch_add(1, Ordering::Relaxed);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn recording off. Spans still open keep unwinding their stacks
/// correctly; they are simply no longer exported.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether recording is on. The single branch every instrumentation
/// point pays when telemetry is off.
#[inline(always)]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Drain everything recorded since [`enable`] into a [`Snapshot`]
/// (flushing the calling thread's buffer first; worker threads flush
/// when their root spans close).
pub fn take() -> Snapshot {
    LOCAL.with(|l| flush_local(&mut l.borrow_mut()));
    let mut s = sink().lock().expect("obs sink");
    let s = std::mem::take(&mut *s);
    Snapshot {
        events: s.events,
        counters: s.counters,
        gauges: s.gauges,
        hists: s.hists,
    }
}

fn flush_local(buf: &mut ThreadBuf) {
    if buf.done.is_empty() {
        return;
    }
    let mut s = sink().lock().expect("obs sink");
    s.events.append(&mut buf.done);
}

// ---------------------------------------------------------------------
// Spans.
// ---------------------------------------------------------------------

/// RAII guard for one open span. Dropping it closes the span and, if it
/// was the thread's root span, drains the thread buffer into the global
/// recorder.
#[must_use = "a span measures the scope of its guard; bind it with `let`"]
pub struct SpanGuard {
    /// Depth of this guard's frame (0 = inert guard, recording off).
    depth: usize,
}

/// Open a span. With recording off this is one atomic load and an inert
/// guard — no clock read, no allocation.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard { depth: 0 };
    }
    span_slow(name)
}

/// Open a span (macro form, mirroring the function; both compile to
/// near-nothing when recording is off).
#[macro_export]
macro_rules! span {
    ($name:literal) => {
        $crate::span($name)
    };
}

#[cold]
fn span_slow(name: &'static str) -> SpanGuard {
    LOCAL.with(|l| {
        let mut buf = l.borrow_mut();
        let generation = GENERATION.load(Ordering::Relaxed);
        if buf.generation != generation {
            // A new recording session started since this thread last
            // recorded: drop stale state, assign a fresh lane.
            buf.generation = generation;
            buf.stack.clear();
            buf.done.clear();
            buf.tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        }
        let path = match buf.stack.last() {
            Some(parent) => format!("{}/{}", parent.path, name),
            None => name.to_string(),
        };
        buf.stack.push(OpenFrame {
            name,
            path,
            start_ns: now_ns(),
            fields: Vec::new(),
        });
        SpanGuard {
            depth: buf.stack.len(),
        }
    })
}

impl SpanGuard {
    #[inline]
    fn with_frame(&self, f: impl FnOnce(&mut OpenFrame)) {
        if self.depth == 0 {
            return;
        }
        LOCAL.with(|l| {
            let mut buf = l.borrow_mut();
            // The frame may be gone if a new session started mid-span.
            if let Some(frame) = buf.stack.get_mut(self.depth - 1) {
                f(frame);
            }
        });
    }

    /// Attach an unsigned-integer field.
    #[inline]
    pub fn field_u64(&self, key: &'static str, v: u64) {
        self.with_frame(|fr| fr.fields.push((key, FieldValue::U64(v))));
    }

    /// Attach a float field.
    #[inline]
    pub fn field_f64(&self, key: &'static str, v: f64) {
        self.with_frame(|fr| fr.fields.push((key, FieldValue::F64(v))));
    }

    /// Attach a string field.
    #[inline]
    pub fn field_str(&self, key: &'static str, v: &str) {
        if self.depth == 0 {
            return;
        }
        let v = v.to_string();
        self.with_frame(|fr| fr.fields.push((key, FieldValue::Str(v))));
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.depth == 0 {
            return;
        }
        let end = now_ns();
        LOCAL.with(|l| {
            let mut buf = l.borrow_mut();
            // Guards drop LIFO; anything deeper was leaked by a panic
            // unwinding past its scope — discard those frames silently.
            while buf.stack.len() >= self.depth {
                let frame = buf.stack.pop().expect("frame present");
                if buf.stack.len() + 1 == self.depth {
                    let tid = buf.tid;
                    buf.done.push(SpanEvent {
                        path: frame.path,
                        name: frame.name,
                        tid,
                        start_ns: frame.start_ns,
                        dur_ns: end.saturating_sub(frame.start_ns),
                        fields: frame.fields,
                    });
                }
            }
            if buf.stack.is_empty() {
                flush_local(&mut buf);
            }
        });
    }
}

// ---------------------------------------------------------------------
// Metrics.
// ---------------------------------------------------------------------

/// Add `delta` to the named monotonic counter.
#[inline]
pub fn counter(name: &str, delta: u64) {
    if !is_enabled() {
        return;
    }
    let mut s = sink().lock().expect("obs sink");
    match s.counters.get_mut(name) {
        Some(v) => *v += delta,
        None => {
            s.counters.insert(name.to_string(), delta);
        }
    }
}

/// Set the named gauge (last write wins).
#[inline]
pub fn gauge(name: &str, value: f64) {
    if !is_enabled() {
        return;
    }
    let mut s = sink().lock().expect("obs sink");
    match s.gauges.get_mut(name) {
        Some(v) => *v = value,
        None => {
            s.gauges.insert(name.to_string(), value);
        }
    }
}

/// Record one sample (nanoseconds, by convention) into the named
/// histogram.
#[inline]
pub fn observe_ns(name: &str, ns: u64) {
    if !is_enabled() {
        return;
    }
    let mut s = sink().lock().expect("obs sink");
    match s.hists.get_mut(name) {
        Some(h) => h.record(ns),
        None => {
            let mut h = Histogram::new();
            h.record(ns);
            s.hists.insert(name.to_string(), h);
        }
    }
}

/// Time a closure into the named histogram. With recording off the
/// closure runs bare — no clock reads.
#[inline]
pub fn time<T>(name: &str, f: impl FnOnce() -> T) -> T {
    if !is_enabled() {
        return f();
    }
    let start = Instant::now();
    let out = f();
    observe_ns(name, start.elapsed().as_nanos() as u64);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// Obs state is process-global; unit tests touching it serialize
    /// through this lock so `cargo test`'s threaded harness cannot
    /// interleave sessions.
    fn session_lock() -> &'static StdMutex<()> {
        static LOCK: OnceLock<StdMutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| StdMutex::new(()))
    }

    #[test]
    fn disabled_records_nothing() {
        let _guard = session_lock().lock().unwrap();
        disable();
        let s = span("nothing");
        s.field_u64("n", 1);
        drop(s);
        counter("c", 1);
        observe_ns("h", 5);
        gauge("g", 1.0);
        let snap = take();
        assert!(snap.events.is_empty());
        assert!(snap.counters.is_empty());
        assert!(snap.hists.is_empty());
        assert!(snap.gauges.is_empty());
    }

    #[test]
    fn nesting_builds_paths_and_flushes_at_root_close() {
        let _guard = session_lock().lock().unwrap();
        enable();
        {
            let outer = span("outer");
            {
                let inner = span("inner");
                inner.field_u64("k", 7);
            }
            outer.field_str("label", "x");
        }
        let snap = take();
        disable();
        assert_eq!(snap.events.len(), 2);
        // Inner closes first.
        assert_eq!(snap.events[0].path, "outer/inner");
        assert_eq!(snap.events[1].path, "outer");
        assert_eq!(snap.events[0].fields, vec![("k", FieldValue::U64(7))]);
        let summary = snap.summary();
        assert_eq!(summary.spans.len(), 2);
        assert_eq!(summary.spans[0].path, "outer");
        assert_eq!(summary.spans[1].depth, 1);
    }

    #[test]
    fn metrics_accumulate() {
        let _guard = session_lock().lock().unwrap();
        enable();
        counter("jobs", 2);
        counter("jobs", 3);
        gauge("g", 1.0);
        gauge("g", 4.0);
        observe_ns("lat", 100);
        observe_ns("lat", 200);
        let snap = take();
        disable();
        assert_eq!(snap.counters.get("jobs"), Some(&5));
        assert_eq!(snap.gauges.get("g"), Some(&4.0));
        assert_eq!(snap.hists.get("lat").unwrap().count(), 2);
    }

    #[test]
    fn cross_thread_spans_land_on_distinct_lanes() {
        let _guard = session_lock().lock().unwrap();
        enable();
        let main_span = span("main");
        std::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|| {
                    let _s = span("worker");
                });
            }
        });
        drop(main_span);
        let snap = take();
        disable();
        assert_eq!(snap.events.len(), 3);
        let mut tids: Vec<u32> = snap.events.iter().map(|e| e.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), 3, "each thread gets its own lane");
    }

    #[test]
    fn time_feeds_histogram_only_when_enabled() {
        let _guard = session_lock().lock().unwrap();
        disable();
        assert_eq!(time("t", || 41) + 1, 42);
        assert!(take().hists.is_empty());
        enable();
        let v = time("t", || 42);
        assert_eq!(v, 42);
        let snap = take();
        disable();
        assert_eq!(snap.hists.get("t").unwrap().count(), 1);
    }
}

//! HDR-style histograms.
//!
//! Values (nanosecond durations, typically) land in logarithmic buckets
//! with 4 linear sub-buckets per power of two — ~6% relative resolution
//! across the full `u64` range in a fixed 256-slot table, no allocation
//! per record. Quantiles are answered from the bucket boundaries, so a
//! reported p99 is an upper bound at that resolution.

/// Number of buckets: 8 exact small-value slots + 4 sub-buckets for each
/// of the 61 octaves above 8.
pub const NUM_BUCKETS: usize = 8 + 61 * 4;

/// A fixed-resolution log-bucketed histogram of `u64` samples.
#[derive(Debug, Clone)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: Box<[u64; NUM_BUCKETS]>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: Box::new([0; NUM_BUCKETS]),
        }
    }
}

/// Bucket index of a value: identity below 8, then `(octave, 2-bit
/// mantissa)` above.
fn bucket_of(v: u64) -> usize {
    if v < 8 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as usize; // >= 3
        let sub = ((v >> (msb - 2)) & 0x3) as usize;
        8 + (msb - 3) * 4 + sub
    }
}

/// Inclusive lower bound of a bucket (the value quantiles report).
fn bucket_floor(idx: usize) -> u64 {
    if idx < 8 {
        idx as u64
    } else {
        let msb = (idx - 8) / 4 + 3;
        let sub = ((idx - 8) % 4) as u64;
        (1u64 << msb) + (sub << (msb - 2))
    }
}

impl Histogram {
    /// Fresh empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_of(v)] += 1;
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`, at bucket resolution
    /// (exact `min`/`max` are reported at the extremes).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q <= 0.0 {
            return self.min();
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = (q * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_floor(idx).clamp(self.min(), self.max);
            }
        }
        self.max
    }

    /// Condense into the fixed summary the reports carry.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            min: self.min(),
            max: self.max,
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

/// The condensed form of a [`Histogram`] (what sidecar files store).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Median (bucket resolution).
    pub p50: u64,
    /// 90th percentile (bucket resolution).
    pub p90: u64,
    /// 99th percentile (bucket resolution).
    pub p99: u64,
}

impl HistogramSummary {
    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_consistent() {
        let mut prev = 0;
        for v in [0u64, 1, 7, 8, 9, 100, 1_000, 65_536, u64::MAX / 2] {
            let idx = bucket_of(v);
            assert!(idx >= prev, "bucket index regressed at {v}");
            prev = idx;
            assert!(bucket_floor(idx) <= v, "floor above value at {v}");
            assert!(idx < NUM_BUCKETS);
        }
    }

    #[test]
    fn quantiles_bound_samples() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v * 1000);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), 1000);
        assert_eq!(h.max(), 1_000_000);
        let p50 = h.quantile(0.5);
        // Bucket resolution is ~6%: the median of 1k..=1M uniform is 500k.
        assert!((400_000..=600_000).contains(&p50), "p50 {p50} out of range");
        assert!(h.quantile(0.99) >= p50);
        assert!(h.quantile(1.0) == 1_000_000);
    }

    #[test]
    fn merge_matches_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut c = Histogram::new();
        for v in [5u64, 17, 120, 4096, 77777] {
            a.record(v);
            c.record(v);
        }
        for v in [1u64, 300, 9999] {
            b.record(v);
            c.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        assert_eq!(a.sum(), c.sum());
        assert_eq!(a.summary(), c.summary());
    }

    #[test]
    fn empty_histogram_is_calm() {
        let h = Histogram::new();
        assert_eq!(h.min(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.summary().mean(), 0.0);
    }
}

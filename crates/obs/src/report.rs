//! Snapshot aggregation and exporters.
//!
//! [`Snapshot`] is what [`take`](crate::take) drains out of the recorder:
//! the raw closed-span events plus the metric registry. Two exporters
//! consume it:
//!
//! * [`Snapshot::chrome_trace_json`] — a `chrome://tracing` /
//!   [Perfetto](https://ui.perfetto.dev) *trace event* file, one complete
//!   (`"ph": "X"`) event per span, with worker threads on separate `tid`
//!   lanes and span fields as `args`;
//! * [`Snapshot::summary`] → [`Summary::render`] — the human-readable
//!   aggregate tree `llamp run --metrics` prints: spans grouped by call
//!   path with counts, totals and numeric-field sums, followed by the
//!   counters, gauges and histogram quantiles.

use crate::hist::{Histogram, HistogramSummary};
use crate::FieldValue;
use std::collections::BTreeMap;

/// One closed span, as recorded.
#[derive(Debug, Clone)]
pub struct SpanEvent {
    /// `/`-joined chain of span names from the thread's root span down to
    /// this one (e.g. `exec.job/scenario/lp.solve`).
    pub path: String,
    /// The span's own name (the last path segment).
    pub name: &'static str,
    /// Recorder-assigned thread lane.
    pub tid: u32,
    /// Start, nanoseconds since the recorder epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Structured fields attached while the span was open.
    pub fields: Vec<(&'static str, FieldValue)>,
}

/// Everything the recorder collected between `enable` and `take`.
#[derive(Debug, Default)]
pub struct Snapshot {
    /// Closed spans (grouped by thread, in per-thread close order).
    pub events: Vec<SpanEvent>,
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges.
    pub gauges: BTreeMap<String, f64>,
    /// Value distributions.
    pub hists: BTreeMap<String, Histogram>,
}

/// One row of the aggregated span tree: every recorded span with the same
/// call path, collapsed.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanAgg {
    /// The shared call path (`/`-joined names).
    pub path: String,
    /// Nesting depth (number of `/` separators).
    pub depth: usize,
    /// Spans collapsed into this row.
    pub count: u64,
    /// Summed duration (ns).
    pub total_ns: u64,
    /// Shortest instance (ns).
    pub min_ns: u64,
    /// Longest instance (ns).
    pub max_ns: u64,
    /// Numeric fields, summed across instances.
    pub fields: Vec<(String, f64)>,
    /// String fields, last value wins.
    pub labels: Vec<(String, String)>,
}

/// The aggregate form of a [`Snapshot`]: what sidecar files store and the
/// tree renderer prints. Raw events are dropped (the Chrome trace is the
/// event-level export).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    /// Span rows, sorted by path (parents precede children).
    pub spans: Vec<SpanAgg>,
    /// Counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauges, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram summaries, sorted by name.
    pub hists: Vec<(String, HistogramSummary)>,
}

impl Snapshot {
    /// Collapse the snapshot into its aggregate [`Summary`].
    pub fn summary(&self) -> Summary {
        let mut rows: BTreeMap<&str, SpanAgg> = BTreeMap::new();
        for e in &self.events {
            let row = rows.entry(e.path.as_str()).or_insert_with(|| SpanAgg {
                path: e.path.clone(),
                depth: e.path.matches('/').count(),
                count: 0,
                total_ns: 0,
                min_ns: u64::MAX,
                max_ns: 0,
                fields: Vec::new(),
                labels: Vec::new(),
            });
            row.count += 1;
            row.total_ns += e.dur_ns;
            row.min_ns = row.min_ns.min(e.dur_ns);
            row.max_ns = row.max_ns.max(e.dur_ns);
            for (k, v) in &e.fields {
                match v {
                    FieldValue::U64(n) => add_field(&mut row.fields, k, *n as f64),
                    FieldValue::F64(x) => add_field(&mut row.fields, k, *x),
                    FieldValue::Str(s) => set_label(&mut row.labels, k, s),
                }
            }
        }
        Summary {
            spans: rows.into_values().collect(),
            counters: self.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            gauges: self.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            hists: self
                .hists
                .iter()
                .map(|(k, h)| (k.clone(), h.summary()))
                .collect(),
        }
    }

    /// Export as a Chrome *trace event* JSON document (load in
    /// `chrome://tracing` or Perfetto). Timestamps/durations are
    /// microseconds, as the format requires.
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
        for (i, e) in self.events.iter().enumerate() {
            out.push_str(&format!(
                "  {{\"name\": {}, \"cat\": \"llamp\", \"ph\": \"X\", \"pid\": 1, \
                 \"tid\": {}, \"ts\": {:.3}, \"dur\": {:.3}",
                json_str(e.name),
                e.tid,
                e.start_ns as f64 / 1e3,
                e.dur_ns as f64 / 1e3,
            ));
            if !e.fields.is_empty() {
                out.push_str(", \"args\": {");
                for (j, (k, v)) in e.fields.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&json_str(k));
                    out.push_str(": ");
                    match v {
                        FieldValue::U64(n) => out.push_str(&n.to_string()),
                        FieldValue::F64(x) => out.push_str(&json_f64(*x)),
                        FieldValue::Str(s) => out.push_str(&json_str(s)),
                    }
                }
                out.push('}');
            }
            out.push('}');
            if i + 1 != self.events.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("]}\n");
        out
    }
}

fn add_field(fields: &mut Vec<(String, f64)>, key: &str, v: f64) {
    match fields.iter_mut().find(|(k, _)| k == key) {
        Some((_, slot)) => *slot += v,
        None => fields.push((key.to_string(), v)),
    }
}

fn set_label(labels: &mut Vec<(String, String)>, key: &str, v: &str) {
    match labels.iter_mut().find(|(k, _)| k == key) {
        Some((_, slot)) => {
            if slot != v {
                *slot = v.to_string();
            }
        }
        None => labels.push((key.to_string(), v.to_string())),
    }
}

/// JSON string literal with the escapes the trace format needs.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Finite floats print shortest-round-trip; non-finite become null (JSON
/// has no inf/NaN).
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "null".into()
    }
}

/// Render a nanosecond quantity right-aligned in 10 columns.
fn ns_cell(ns: u64) -> String {
    format!("{:>10}", fmt_ns(ns))
}

/// Human duration: picks ns/µs/ms/s.
fn fmt_ns(ns: u64) -> String {
    let v = ns as f64;
    if v >= 1e9 {
        format!("{:.2} s", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2} ms", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2} µs", v / 1e3)
    } else {
        format!("{ns} ns")
    }
}

impl Summary {
    /// True when nothing was recorded at all.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.counters.is_empty()
            && self.gauges.is_empty()
            && self.hists.is_empty()
    }

    /// The human-readable metrics block (`llamp run --metrics`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.spans.is_empty() {
            out.push_str(&format!(
                "{:<44} {:>7} {:>10} {:>10} {:>10}\n",
                "span", "count", "total", "mean", "max"
            ));
            for s in &self.spans {
                let name = s.path.rsplit('/').next().unwrap_or(&s.path);
                let mean = s.total_ns / s.count.max(1);
                out.push_str(&format!(
                    "{:<44} {:>7} {} {} {}\n",
                    format!("{}{}", "  ".repeat(s.depth), name),
                    s.count,
                    ns_cell(s.total_ns),
                    ns_cell(mean),
                    ns_cell(s.max_ns),
                ));
                let mut annotations: Vec<String> =
                    s.labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
                annotations.extend(s.fields.iter().map(|(k, v)| {
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        format!("{k}={}", *v as i64)
                    } else {
                        format!("{k}={v:.3e}")
                    }
                }));
                if !annotations.is_empty() {
                    out.push_str(&format!(
                        "{}• {}\n",
                        "  ".repeat(s.depth + 1),
                        annotations.join(", ")
                    ));
                }
            }
        }
        if !self.counters.is_empty() {
            out.push_str(&format!("{:<44} {:>7}\n", "counter", "value"));
            for (k, v) in &self.counters {
                out.push_str(&format!("{k:<44} {v:>7}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str(&format!("{:<44} {:>7}\n", "gauge", "value"));
            for (k, v) in &self.gauges {
                out.push_str(&format!("{k:<44} {v:>7.3}\n"));
            }
        }
        if !self.hists.is_empty() {
            out.push_str(&format!(
                "{:<34} {:>7} {:>10} {:>10} {:>10} {:>10}\n",
                "histogram", "count", "p50", "p90", "p99", "max"
            ));
            for (k, h) in &self.hists {
                out.push_str(&format!(
                    "{:<34} {:>7} {} {} {} {}\n",
                    k,
                    h.count,
                    ns_cell(h.p50),
                    ns_cell(h.p90),
                    ns_cell(h.p99),
                    ns_cell(h.max),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(path: &str, dur: u64, fields: Vec<(&'static str, FieldValue)>) -> SpanEvent {
        SpanEvent {
            path: path.to_string(),
            name: "x",
            tid: 1,
            start_ns: 0,
            dur_ns: dur,
            fields,
        }
    }

    #[test]
    fn summary_groups_by_path_and_sums_fields() {
        let snap = Snapshot {
            events: vec![
                event("a", 10, vec![("n", FieldValue::U64(2))]),
                event("a", 30, vec![("n", FieldValue::U64(3))]),
                event("a/b", 5, vec![]),
            ],
            ..Default::default()
        };
        let s = snap.summary();
        assert_eq!(s.spans.len(), 2);
        let a = &s.spans[0];
        assert_eq!((a.path.as_str(), a.count, a.total_ns), ("a", 2, 40));
        assert_eq!(a.min_ns, 10);
        assert_eq!(a.max_ns, 30);
        assert_eq!(a.fields, vec![("n".to_string(), 5.0)]);
        assert_eq!(s.spans[1].depth, 1);
    }

    #[test]
    fn chrome_trace_escapes_and_structures() {
        let snap = Snapshot {
            events: vec![event(
                "a",
                1500,
                vec![("k\"ey", FieldValue::Str("v\\1".into()))],
            )],
            ..Default::default()
        };
        let json = snap.chrome_trace_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\\\"ey"));
        assert!(json.contains("v\\\\1"));
        assert!(json.contains("\"dur\": 1.500"));
    }

    #[test]
    fn render_is_stable_for_empty_summary() {
        assert!(Summary::default().render().is_empty());
        assert!(Summary::default().is_empty());
    }
}

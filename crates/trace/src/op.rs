//! MPI call model.
//!
//! The subset covers everything the paper's applications exercise: blocking
//! and nonblocking point-to-point with request handles, combined
//! send-receive, and the dense collectives whose algorithmic substitution
//! the ICON case study analyses (§IV-1).

/// One MPI call as seen by the tracer (timestamps live in
/// [`TraceRecord`]). `peer`/`root` are ranks in `MPI_COMM_WORLD`; `bytes`
/// are payload sizes; `req` are per-rank request handles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `MPI_Init`.
    Init,
    /// `MPI_Finalize`.
    Finalize,
    /// Blocking standard-mode send.
    Send { peer: u32, bytes: u64, tag: u32 },
    /// Blocking receive.
    Recv { peer: u32, bytes: u64, tag: u32 },
    /// Nonblocking send; completion observed by `Wait`/`Waitall` on `req`.
    Isend {
        peer: u32,
        bytes: u64,
        tag: u32,
        req: u32,
    },
    /// Nonblocking receive.
    Irecv {
        peer: u32,
        bytes: u64,
        tag: u32,
        req: u32,
    },
    /// Wait for a single request.
    Wait { req: u32 },
    /// Wait for a set of requests.
    Waitall { reqs: Vec<u32> },
    /// Combined send+receive (common in halo exchanges).
    Sendrecv {
        dst: u32,
        send_bytes: u64,
        send_tag: u32,
        src: u32,
        recv_bytes: u64,
        recv_tag: u32,
    },
    /// `MPI_Barrier` on the world communicator.
    Barrier,
    /// `MPI_Bcast`: `bytes` from `root` to all.
    Bcast { bytes: u64, root: u32 },
    /// `MPI_Reduce`: `bytes` from all to `root`.
    Reduce { bytes: u64, root: u32 },
    /// `MPI_Allreduce` over `bytes` (ICON's dynamical-core workhorse).
    Allreduce { bytes: u64 },
    /// `MPI_Allgather`: every rank contributes `bytes`.
    Allgather { bytes: u64 },
    /// `MPI_Alltoall`: `bytes` exchanged between every pair.
    Alltoall { bytes: u64 },
}

impl CallKind {
    /// Whether this call is a collective over the world communicator.
    pub fn is_collective(&self) -> bool {
        matches!(
            self,
            CallKind::Barrier
                | CallKind::Bcast { .. }
                | CallKind::Reduce { .. }
                | CallKind::Allreduce { .. }
                | CallKind::Allgather { .. }
                | CallKind::Alltoall { .. }
        )
    }

    /// The MPI function name (used by the text format).
    pub fn name(&self) -> &'static str {
        match self {
            CallKind::Init => "MPI_Init",
            CallKind::Finalize => "MPI_Finalize",
            CallKind::Send { .. } => "MPI_Send",
            CallKind::Recv { .. } => "MPI_Recv",
            CallKind::Isend { .. } => "MPI_Isend",
            CallKind::Irecv { .. } => "MPI_Irecv",
            CallKind::Wait { .. } => "MPI_Wait",
            CallKind::Waitall { .. } => "MPI_Waitall",
            CallKind::Sendrecv { .. } => "MPI_Sendrecv",
            CallKind::Barrier => "MPI_Barrier",
            CallKind::Bcast { .. } => "MPI_Bcast",
            CallKind::Reduce { .. } => "MPI_Reduce",
            CallKind::Allreduce { .. } => "MPI_Allreduce",
            CallKind::Allgather { .. } => "MPI_Allgather",
            CallKind::Alltoall { .. } => "MPI_Alltoall",
        }
    }
}

/// One timestamped call in a rank's trace: what `liballprof` records
/// (paper Fig. 3A). Compute time is *not* recorded — Schedgen infers it
/// from the gap to the previous record's `end`.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// The call.
    pub kind: CallKind,
    /// Start timestamp (ns on the rank's clock).
    pub start: f64,
    /// End timestamp (ns).
    pub end: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collective_classification() {
        assert!(CallKind::Barrier.is_collective());
        assert!(CallKind::Allreduce { bytes: 8 }.is_collective());
        assert!(!CallKind::Send {
            peer: 0,
            bytes: 8,
            tag: 0
        }
        .is_collective());
        assert!(!CallKind::Wait { req: 0 }.is_collective());
    }

    #[test]
    fn names_are_mpi_spelled() {
        assert_eq!(CallKind::Init.name(), "MPI_Init");
        assert_eq!(
            CallKind::Sendrecv {
                dst: 0,
                send_bytes: 1,
                send_tag: 0,
                src: 1,
                recv_bytes: 1,
                recv_tag: 0
            }
            .name(),
            "MPI_Sendrecv"
        );
    }
}

//! `liballprof`-style text trace format.
//!
//! One line per MPI call, colon-separated, with the start timestamp first
//! and the end timestamp last — the shape shown in the paper's Fig. 2
//! (`MPI_Irecv:1547003:0:3500:15:...:1547032`). Rank sections are
//! introduced by a header line. Timestamps are nanoseconds.
//!
//! The format round-trips exactly: `parse(write(trace)) == trace`.

use crate::op::{CallKind, TraceRecord};
use crate::program::{RankTrace, Trace};
use std::fmt::Write as _;

/// Serialise a full trace to the text format.
pub fn write_trace(trace: &Trace) -> String {
    let mut out = String::new();
    write_trace_to(&mut out, trace).expect("writing to a String cannot fail");
    out
}

/// Serialise a trace into any [`std::fmt::Write`] sink. Million-record
/// traces stream straight to a file this way instead of round-tripping
/// through one giant `String`.
pub fn write_trace_to<W: std::fmt::Write>(out: &mut W, trace: &Trace) -> std::fmt::Result {
    writeln!(out, "# llamp-trace nranks={}", trace.nranks)?;
    let mut line = String::new();
    for rank in &trace.ranks {
        writeln!(out, "@rank {}", rank.rank)?;
        for rec in &rank.records {
            line.clear();
            write_record(&mut line, rec);
            out.write_str(&line)?;
        }
    }
    Ok(())
}

fn write_record(out: &mut String, rec: &TraceRecord) {
    let name = rec.kind.name();
    let s = rec.start;
    let e = rec.end;
    let _ = match &rec.kind {
        CallKind::Init | CallKind::Finalize | CallKind::Barrier => {
            writeln!(out, "{name}:{s}:{e}")
        }
        CallKind::Send { peer, bytes, tag } | CallKind::Recv { peer, bytes, tag } => {
            writeln!(out, "{name}:{s}:{peer}:{bytes}:{tag}:{e}")
        }
        CallKind::Isend {
            peer,
            bytes,
            tag,
            req,
        }
        | CallKind::Irecv {
            peer,
            bytes,
            tag,
            req,
        } => {
            writeln!(out, "{name}:{s}:{peer}:{bytes}:{tag}:{req}:{e}")
        }
        CallKind::Wait { req } => writeln!(out, "{name}:{s}:{req}:{e}"),
        CallKind::Waitall { reqs } => {
            let list = reqs
                .iter()
                .map(|r| r.to_string())
                .collect::<Vec<_>>()
                .join(",");
            writeln!(out, "{name}:{s}:{list}:{e}")
        }
        CallKind::Sendrecv {
            dst,
            send_bytes,
            send_tag,
            src,
            recv_bytes,
            recv_tag,
        } => writeln!(
            out,
            "{name}:{s}:{dst}:{send_bytes}:{send_tag}:{src}:{recv_bytes}:{recv_tag}:{e}"
        ),
        CallKind::Bcast { bytes, root } | CallKind::Reduce { bytes, root } => {
            writeln!(out, "{name}:{s}:{bytes}:{root}:{e}")
        }
        CallKind::Allreduce { bytes }
        | CallKind::Allgather { bytes }
        | CallKind::Alltoall { bytes } => writeln!(out, "{name}:{s}:{bytes}:{e}"),
    };
}

/// Errors the parser reports, with 1-based line numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Incremental consumer for [`parse_trace_into`]: sees each `@rank`
/// header and each record in file order, without the parser ever
/// materialising a [`Trace`]. Implementors that can fail (e.g. a graph
/// compiler rejecting a record) surface their error through
/// [`StreamError::Sink`].
pub trait TraceSink {
    /// Sink-side failure type (use [`std::convert::Infallible`] for pure
    /// collectors).
    type Error;

    /// A `@rank` header opened a new rank section.
    fn rank(&mut self, rank: u32) -> Result<(), Self::Error>;

    /// One record of the current rank section.
    fn record(&mut self, rec: TraceRecord) -> Result<(), Self::Error>;
}

/// Either side of a streaming parse can fail: the text itself
/// ([`ParseError`], with its 1-based line number) or the sink consuming
/// the records.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamError<E> {
    /// The trace text is malformed.
    Parse(ParseError),
    /// The sink rejected a header or record.
    Sink(E),
}

impl<E> From<ParseError> for StreamError<E> {
    fn from(e: ParseError) -> Self {
        StreamError::Parse(e)
    }
}

impl<E: std::fmt::Display> std::fmt::Display for StreamError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Parse(e) => e.fmt(f),
            StreamError::Sink(e) => e.fmt(f),
        }
    }
}

impl<E: std::fmt::Display + std::fmt::Debug> std::error::Error for StreamError<E> {}

/// The world size a trace header declares, if any — readable without
/// parsing the body, so a streaming consumer can pre-size its arenas.
/// Scans only the comment lines before the first rank section.
pub fn declared_nranks(input: &str) -> Option<u32> {
    for raw in input.lines() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let rest = line.strip_prefix('#')?;
        if let Some(n) = rest.trim().strip_prefix("llamp-trace nranks=") {
            return n.parse().ok();
        }
    }
    None
}

/// Streaming parse: feed each header/record to `sink` as it is read,
/// holding only the current line. Returns the world size (declared by the
/// header, or the number of rank sections seen). Used by the graph
/// compiler to ingest million-record traces without an intermediate
/// [`Trace`]; [`parse_trace`] is a collector over this.
pub fn parse_trace_into<S: TraceSink>(
    input: &str,
    sink: &mut S,
) -> Result<u32, StreamError<S::Error>> {
    // Chaos site: simulates a torn/corrupted read surfacing as a typed
    // parse error (never a panic, never silent truncation).
    if llamp_faults::should_inject("trace.parse.corrupt") {
        return Err(ParseError {
            line: 0,
            message: "injected fault: trace.parse.corrupt".into(),
        }
        .into());
    }
    let mut nranks: Option<u32> = None;
    let mut ranks_seen = 0u32;
    for (idx, raw) in input.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let err = |message: String| ParseError {
            line: lineno,
            message,
        };
        if let Some(rest) = line.strip_prefix('#') {
            if let Some(n) = rest.trim().strip_prefix("llamp-trace nranks=") {
                nranks = Some(n.parse().map_err(|e| err(format!("bad nranks: {e}")))?);
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("@rank") {
            let rank: u32 = rest
                .trim()
                .parse()
                .map_err(|e| err(format!("bad rank header: {e}")))?;
            ranks_seen += 1;
            sink.rank(rank).map_err(StreamError::Sink)?;
            continue;
        }
        if ranks_seen == 0 {
            return Err(err("record before any @rank header".into()).into());
        }
        sink.record(parse_record(line, lineno)?)
            .map_err(StreamError::Sink)?;
    }
    let nranks = nranks.unwrap_or(ranks_seen);
    if nranks != ranks_seen {
        return Err(ParseError {
            line: 0,
            message: format!("header says {} ranks, found {}", nranks, ranks_seen),
        }
        .into());
    }
    Ok(nranks)
}

/// Parse the text format back into a [`Trace`].
pub fn parse_trace(input: &str) -> Result<Trace, ParseError> {
    struct Collect {
        ranks: Vec<RankTrace>,
    }
    impl TraceSink for Collect {
        type Error = std::convert::Infallible;

        fn rank(&mut self, rank: u32) -> Result<(), Self::Error> {
            self.ranks.push(RankTrace {
                rank,
                records: Vec::new(),
            });
            Ok(())
        }

        fn record(&mut self, rec: TraceRecord) -> Result<(), Self::Error> {
            self.ranks
                .last_mut()
                .expect("parser enforces a rank header first")
                .records
                .push(rec);
            Ok(())
        }
    }
    let mut sink = Collect { ranks: Vec::new() };
    match parse_trace_into(input, &mut sink) {
        Ok(nranks) => Ok(Trace {
            nranks,
            ranks: sink.ranks,
        }),
        Err(StreamError::Parse(e)) => Err(e),
        Err(StreamError::Sink(e)) => match e {},
    }
}

/// The widest record line (`MPI_Sendrecv`) has 9 colon-separated fields,
/// so one line parses into a fixed-size buffer — no per-line `Vec`.
const MAX_FIELDS: usize = 9;

fn parse_record(line: &str, lineno: usize) -> Result<TraceRecord, ParseError> {
    let err = |message: String| ParseError {
        line: lineno,
        message,
    };
    // Split into the stack buffer; fields past the widest valid arity are
    // only counted, so the arity error still reports the true total.
    let mut fields: [&str; MAX_FIELDS] = [""; MAX_FIELDS];
    let mut count = 0usize;
    for part in line.split(':') {
        if count < MAX_FIELDS {
            fields[count] = part;
        }
        count += 1;
    }
    let parts = &fields[..count.min(MAX_FIELDS)];
    let name = parts[0];
    let need = |n: usize| -> Result<(), ParseError> {
        if count != n {
            Err(err(format!("{name}: expected {n} fields, found {count}")))
        } else {
            Ok(())
        }
    };
    let f = |i: usize| -> Result<f64, ParseError> {
        parts[i]
            .parse()
            .map_err(|e| err(format!("{name}: bad float field {i}: {e}")))
    };
    let u = |i: usize| -> Result<u64, ParseError> {
        parts[i]
            .parse()
            .map_err(|e| err(format!("{name}: bad int field {i}: {e}")))
    };
    let u32f = |i: usize| -> Result<u32, ParseError> { u(i).map(|v| v as u32) };

    let (kind, start, end) = match name {
        "MPI_Init" | "MPI_Finalize" | "MPI_Barrier" => {
            need(3)?;
            let k = match name {
                "MPI_Init" => CallKind::Init,
                "MPI_Finalize" => CallKind::Finalize,
                _ => CallKind::Barrier,
            };
            (k, f(1)?, f(2)?)
        }
        "MPI_Send" | "MPI_Recv" => {
            need(6)?;
            let k = if name == "MPI_Send" {
                CallKind::Send {
                    peer: u32f(2)?,
                    bytes: u(3)?,
                    tag: u32f(4)?,
                }
            } else {
                CallKind::Recv {
                    peer: u32f(2)?,
                    bytes: u(3)?,
                    tag: u32f(4)?,
                }
            };
            (k, f(1)?, f(5)?)
        }
        "MPI_Isend" | "MPI_Irecv" => {
            need(7)?;
            let (peer, bytes, tag, req) = (u32f(2)?, u(3)?, u32f(4)?, u32f(5)?);
            let k = if name == "MPI_Isend" {
                CallKind::Isend {
                    peer,
                    bytes,
                    tag,
                    req,
                }
            } else {
                CallKind::Irecv {
                    peer,
                    bytes,
                    tag,
                    req,
                }
            };
            (k, f(1)?, f(6)?)
        }
        "MPI_Wait" => {
            need(4)?;
            (CallKind::Wait { req: u32f(2)? }, f(1)?, f(3)?)
        }
        "MPI_Waitall" => {
            need(4)?;
            let reqs = parts[2]
                .split(',')
                .map(|s| {
                    s.parse::<u32>()
                        .map_err(|e| err(format!("bad request id: {e}")))
                })
                .collect::<Result<Vec<_>, _>>()?;
            (CallKind::Waitall { reqs }, f(1)?, f(3)?)
        }
        "MPI_Sendrecv" => {
            need(9)?;
            (
                CallKind::Sendrecv {
                    dst: u32f(2)?,
                    send_bytes: u(3)?,
                    send_tag: u32f(4)?,
                    src: u32f(5)?,
                    recv_bytes: u(6)?,
                    recv_tag: u32f(7)?,
                },
                f(1)?,
                f(8)?,
            )
        }
        "MPI_Bcast" | "MPI_Reduce" => {
            need(5)?;
            let (bytes, root) = (u(2)?, u32f(3)?);
            let k = if name == "MPI_Bcast" {
                CallKind::Bcast { bytes, root }
            } else {
                CallKind::Reduce { bytes, root }
            };
            (k, f(1)?, f(4)?)
        }
        "MPI_Allreduce" | "MPI_Allgather" | "MPI_Alltoall" => {
            need(4)?;
            let bytes = u(2)?;
            let k = match name {
                "MPI_Allreduce" => CallKind::Allreduce { bytes },
                "MPI_Allgather" => CallKind::Allgather { bytes },
                _ => CallKind::Alltoall { bytes },
            };
            (k, f(1)?, f(3)?)
        }
        other => return Err(err(format!("unknown MPI call {other}"))),
    };
    Ok(TraceRecord { kind, start, end })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{ProgramSet, TracerConfig};

    fn sample_trace() -> Trace {
        ProgramSet::spmd(2, |rank, b| {
            b.comp(1_000.0);
            if rank == 0 {
                let r = b.isend(1, 3_500, 15);
                b.comp(250.0);
                b.wait(r);
            } else {
                let r = b.irecv(0, 3_500, 15);
                b.wait(r);
            }
            b.comp(42.5);
            b.allreduce(8);
            b.sendrecv(1 - rank, 64, 1, 1 - rank, 64, 1);
            b.barrier();
            b.bcast(1024, 0);
            b.reduce(512, 1);
            b.allgather(16);
            b.alltoall(32);
        })
        .trace(&TracerConfig::default())
    }

    #[test]
    fn round_trip_identity() {
        let tr = sample_trace();
        let text = write_trace(&tr);
        let back = parse_trace(&text).unwrap();
        assert_eq!(tr, back);
    }

    #[test]
    fn parse_rejects_unknown_call() {
        let text = "# llamp-trace nranks=1\n@rank 0\nMPI_Bogus:0:0\n";
        let e = parse_trace(text).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("unknown MPI call"));
    }

    #[test]
    fn parse_rejects_wrong_arity() {
        let text = "# llamp-trace nranks=1\n@rank 0\nMPI_Send:0:1:2:3\n";
        let e = parse_trace(text).unwrap_err();
        assert!(e.message.contains("expected 6 fields"));
    }

    #[test]
    fn parse_rejects_headerless_records() {
        let text = "MPI_Init:0:0\n";
        let e = parse_trace(text).unwrap_err();
        assert!(e.message.contains("before any @rank"));
    }

    #[test]
    fn rank_count_mismatch_detected() {
        let text = "# llamp-trace nranks=3\n@rank 0\nMPI_Init:0:0\n";
        let e = parse_trace(text).unwrap_err();
        assert!(e.message.contains("header says 3"));
    }

    #[test]
    fn waitall_requests_round_trip() {
        let tr = ProgramSet::spmd(1, |_, b| {
            let a = b.irecv(0, 8, 0);
            let c = b.isend(0, 8, 0);
            b.waitall(vec![a, c]);
        })
        .trace(&TracerConfig::default());
        let back = parse_trace(&write_trace(&tr)).unwrap();
        assert_eq!(tr, back);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::op::CallKind;
    use crate::program::{RankTrace, Trace};
    use crate::TraceRecord;
    use proptest::prelude::*;

    fn kind_strategy() -> impl Strategy<Value = CallKind> {
        prop_oneof![
            Just(CallKind::Barrier),
            (0u32..8, 0u64..10_000, 0u32..100).prop_map(|(peer, bytes, tag)| CallKind::Send {
                peer,
                bytes,
                tag
            }),
            (0u32..8, 0u64..10_000, 0u32..100).prop_map(|(peer, bytes, tag)| CallKind::Recv {
                peer,
                bytes,
                tag
            }),
            (0u32..8, 0u64..10_000, 0u32..100, 0u32..32).prop_map(|(peer, bytes, tag, req)| {
                CallKind::Isend {
                    peer,
                    bytes,
                    tag,
                    req,
                }
            }),
            (0u64..10_000).prop_map(|bytes| CallKind::Allreduce { bytes }),
            (0u64..10_000, 0u32..8).prop_map(|(bytes, root)| CallKind::Bcast { bytes, root }),
            (0u32..32).prop_map(|req| CallKind::Wait { req }),
            prop::collection::vec(0u32..32, 1..5).prop_map(|reqs| CallKind::Waitall { reqs }),
        ]
    }

    proptest! {
        #[test]
        fn arbitrary_traces_round_trip(
            kinds in prop::collection::vec(kind_strategy(), 0..50),
            gaps in prop::collection::vec(0.0f64..1e6, 0..50),
        ) {
            let mut records = vec![TraceRecord { kind: CallKind::Init, start: 0.0, end: 0.0 }];
            let mut clock = 0.0;
            for (i, kind) in kinds.into_iter().enumerate() {
                clock += gaps.get(i).copied().unwrap_or(1.0);
                records.push(TraceRecord { kind, start: clock, end: clock });
            }
            let tr = Trace { nranks: 1, ranks: vec![RankTrace { rank: 0, records }] };
            let back = parse_trace(&write_trace(&tr)).unwrap();
            prop_assert_eq!(tr, back);
        }
    }
}

//! # llamp-trace — MPI traces and per-rank programs
//!
//! LLAMP starts from *traces*: per-rank logs of MPI calls with start/end
//! timestamps, as collected by `liballprof` in the original toolchain
//! (paper Fig. 2, §II-A). This crate provides:
//!
//! * [`op::CallKind`] — the modelled subset of MPI: blocking and
//!   nonblocking point-to-point, `Sendrecv`, persistent-style request
//!   handles, and the collectives Schedgen substitutes with point-to-point
//!   algorithms.
//! * [`program`] — *per-rank programs*: explicit sequences of compute
//!   phases and MPI calls. The paper traces real applications; this
//!   workspace's application proxies (crate `llamp-workloads`) emit
//!   programs instead, and [`program::ProgramSet::trace`] converts them to
//!   timestamped traces with a virtual per-rank clock — preserving exactly
//!   the information `liballprof` would capture (timestamps whose gaps are
//!   the compute intervals Schedgen infers, §II-A and Fig. 3A).
//! * [`text`] — a `liballprof`-style line format (`MPI_Isend:<t0>:...:<t1>`)
//!   with a writer and parser, so traces can be stored, diffed and fed back
//!   through the pipeline.

pub mod op;
pub mod program;
pub mod text;

pub use op::{CallKind, TraceRecord};
pub use program::{Program, ProgramBuilder, ProgramSet, RankTrace, Trace, TracerConfig};

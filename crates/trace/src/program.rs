//! Per-rank programs and the virtual-clock tracer.
//!
//! A [`Program`] is the ground truth an application proxy emits: an ordered
//! list of compute phases and MPI calls for one rank. [`ProgramSet::trace`]
//! plays the role of `liballprof`: it walks each rank's program with a
//! local clock, producing [`TraceRecord`]s whose inter-record gaps equal
//! the compute phases — the only timing information Schedgen extracts from
//! real traces (paper §II-A: "By exploiting the difference in timestamps of
//! consecutive MPI operations, Schedgen infers the amount of computation
//! that occurred").

use crate::op::{CallKind, TraceRecord};

/// One step of a rank's program.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Pure computation for the given duration (ns).
    Comp(f64),
    /// An MPI call.
    Call(CallKind),
}

/// The full instruction sequence of one rank.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Steps in program order (without `Init`/`Finalize`; the tracer adds
    /// those).
    pub ops: Vec<Op>,
}

/// Fluent builder for [`Program`]s; allocates request handles for the
/// nonblocking calls.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    ops: Vec<Op>,
    next_req: u32,
}

impl ProgramBuilder {
    /// Start an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start a program with room for `ops` steps — generators that know
    /// their op count up front (e.g. `iters × per-iteration shape`) avoid
    /// the doubling reallocations that dominate million-op builds.
    pub fn with_capacity(ops: usize) -> Self {
        Self {
            ops: Vec::with_capacity(ops),
            next_req: 0,
        }
    }

    /// Append a compute phase of `ns` nanoseconds (ignored if zero or
    /// negative, which keeps generated workloads branch-free).
    pub fn comp(&mut self, ns: f64) -> &mut Self {
        if ns > 0.0 {
            // Coalesce with a preceding compute phase.
            if let Some(Op::Comp(prev)) = self.ops.last_mut() {
                *prev += ns;
            } else {
                self.ops.push(Op::Comp(ns));
            }
        }
        self
    }

    /// Blocking send.
    pub fn send(&mut self, peer: u32, bytes: u64, tag: u32) -> &mut Self {
        self.ops.push(Op::Call(CallKind::Send { peer, bytes, tag }));
        self
    }

    /// Blocking receive.
    pub fn recv(&mut self, peer: u32, bytes: u64, tag: u32) -> &mut Self {
        self.ops.push(Op::Call(CallKind::Recv { peer, bytes, tag }));
        self
    }

    /// Nonblocking send; returns the request handle.
    pub fn isend(&mut self, peer: u32, bytes: u64, tag: u32) -> u32 {
        let req = self.next_req;
        self.next_req += 1;
        self.ops.push(Op::Call(CallKind::Isend {
            peer,
            bytes,
            tag,
            req,
        }));
        req
    }

    /// Nonblocking receive; returns the request handle.
    pub fn irecv(&mut self, peer: u32, bytes: u64, tag: u32) -> u32 {
        let req = self.next_req;
        self.next_req += 1;
        self.ops.push(Op::Call(CallKind::Irecv {
            peer,
            bytes,
            tag,
            req,
        }));
        req
    }

    /// Wait on one request.
    pub fn wait(&mut self, req: u32) -> &mut Self {
        self.ops.push(Op::Call(CallKind::Wait { req }));
        self
    }

    /// Wait on several requests.
    pub fn waitall(&mut self, reqs: Vec<u32>) -> &mut Self {
        if !reqs.is_empty() {
            self.ops.push(Op::Call(CallKind::Waitall { reqs }));
        }
        self
    }

    /// Combined send/receive.
    #[allow(clippy::too_many_arguments)]
    pub fn sendrecv(
        &mut self,
        dst: u32,
        send_bytes: u64,
        send_tag: u32,
        src: u32,
        recv_bytes: u64,
        recv_tag: u32,
    ) -> &mut Self {
        self.ops.push(Op::Call(CallKind::Sendrecv {
            dst,
            send_bytes,
            send_tag,
            src,
            recv_bytes,
            recv_tag,
        }));
        self
    }

    /// World barrier.
    pub fn barrier(&mut self) -> &mut Self {
        self.ops.push(Op::Call(CallKind::Barrier));
        self
    }

    /// Broadcast from `root`.
    pub fn bcast(&mut self, bytes: u64, root: u32) -> &mut Self {
        self.ops.push(Op::Call(CallKind::Bcast { bytes, root }));
        self
    }

    /// Reduce to `root`.
    pub fn reduce(&mut self, bytes: u64, root: u32) -> &mut Self {
        self.ops.push(Op::Call(CallKind::Reduce { bytes, root }));
        self
    }

    /// Allreduce.
    pub fn allreduce(&mut self, bytes: u64) -> &mut Self {
        self.ops.push(Op::Call(CallKind::Allreduce { bytes }));
        self
    }

    /// Allgather.
    pub fn allgather(&mut self, bytes: u64) -> &mut Self {
        self.ops.push(Op::Call(CallKind::Allgather { bytes }));
        self
    }

    /// Alltoall.
    pub fn alltoall(&mut self, bytes: u64) -> &mut Self {
        self.ops.push(Op::Call(CallKind::Alltoall { bytes }));
        self
    }

    /// Finish, yielding the program.
    pub fn build(self) -> Program {
        Program { ops: self.ops }
    }
}

/// Programs for every rank of a job.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramSet {
    /// World size.
    pub nranks: u32,
    /// One program per rank, indexed by rank.
    pub programs: Vec<Program>,
}

impl ProgramSet {
    /// Bundle per-rank programs; `programs[r]` is rank `r`.
    ///
    /// # Panics
    /// Panics when the program count disagrees with `nranks`.
    pub fn new(programs: Vec<Program>) -> Self {
        let nranks = programs.len() as u32;
        assert!(nranks > 0, "empty program set");
        Self { nranks, programs }
    }

    /// Generate per-rank programs from a closure (the standard SPMD shape).
    pub fn spmd(nranks: u32, f: impl FnMut(u32, &mut ProgramBuilder)) -> Self {
        Self::spmd_with_capacity(nranks, 0, f)
    }

    /// [`ProgramSet::spmd`] with a per-rank op-count hint, so each rank's
    /// program vector is allocated once (see
    /// [`ProgramBuilder::with_capacity`]).
    pub fn spmd_with_capacity(
        nranks: u32,
        ops_hint: usize,
        mut f: impl FnMut(u32, &mut ProgramBuilder),
    ) -> Self {
        let programs = (0..nranks)
            .map(|r| {
                let mut b = ProgramBuilder::with_capacity(ops_hint);
                f(r, &mut b);
                b.build()
            })
            .collect();
        Self { nranks, programs }
    }

    /// Total number of MPI calls across all ranks (excluding the implicit
    /// `Init`/`Finalize`).
    pub fn num_calls(&self) -> usize {
        self.programs
            .iter()
            .map(|p| p.ops.iter().filter(|o| matches!(o, Op::Call(_))).count())
            .sum()
    }

    /// Number of records the tracer emits for `rank` (its MPI calls plus
    /// the implicit `Init`/`Finalize`) — known before tracing, so
    /// consumers can pre-size per-rank arenas.
    pub fn rank_records(&self, rank: u32) -> usize {
        self.programs[rank as usize]
            .ops
            .iter()
            .filter(|o| matches!(o, Op::Call(_)))
            .count()
            + 2
    }

    /// Total records the tracer emits across all ranks.
    pub fn num_records(&self) -> usize {
        self.num_calls() + 2 * self.nranks as usize
    }

    /// Stream the virtual-clock tracer's records without materialising a
    /// [`Trace`]: `on_rank` opens each rank section in ascending order,
    /// then `on_record` sees that rank's records (including the implicit
    /// `Init`/`Finalize`) in call order, borrowing the program's own
    /// [`CallKind`]s — no per-record clone. This is the single source of
    /// truth for the tracer's clock semantics; [`ProgramSet::trace`] is a
    /// collector over it.
    pub fn replay<E>(
        &self,
        cfg: &TracerConfig,
        mut on_rank: impl FnMut(u32) -> Result<(), E>,
        mut on_record: impl FnMut(&CallKind, f64, f64) -> Result<(), E>,
    ) -> Result<(), E> {
        for (rank, prog) in self.programs.iter().enumerate() {
            on_rank(rank as u32)?;
            let mut clock = 0.0f64;
            on_record(&CallKind::Init, 0.0, 0.0)?;
            for op in &prog.ops {
                match op {
                    Op::Comp(ns) => clock += ns,
                    Op::Call(kind) => {
                        let start = clock;
                        clock += cfg.call_duration_ns;
                        on_record(kind, start, clock)?;
                    }
                }
            }
            on_record(&CallKind::Finalize, clock, clock)?;
        }
        Ok(())
    }

    /// Run the virtual-clock tracer, producing a [`Trace`].
    pub fn trace(&self, cfg: &TracerConfig) -> Trace {
        let ranks: std::cell::RefCell<Vec<RankTrace>> =
            std::cell::RefCell::new(Vec::with_capacity(self.nranks as usize));
        let res: Result<(), std::convert::Infallible> = self.replay(
            cfg,
            |rank| {
                ranks.borrow_mut().push(RankTrace {
                    rank,
                    records: Vec::with_capacity(self.rank_records(rank)),
                });
                Ok(())
            },
            |kind, start, end| {
                ranks
                    .borrow_mut()
                    .last_mut()
                    .expect("replay opens a rank before its records")
                    .records
                    .push(TraceRecord {
                        kind: kind.clone(),
                        start,
                        end,
                    });
                Ok(())
            },
        );
        match res {
            Ok(()) => Trace {
                nranks: self.nranks,
                ranks: ranks.into_inner(),
            },
            Err(e) => match e {},
        }
    }
}

/// Tracer knobs.
#[derive(Debug, Clone, Copy)]
pub struct TracerConfig {
    /// Nominal duration attributed to each MPI call in the trace. Real
    /// traces contain the *measured* call duration; the analysis models the
    /// call's cost itself via LogGPS, so the faithful default is zero
    /// (Schedgen only consumes the gaps *between* calls).
    pub call_duration_ns: f64,
}

impl Default for TracerConfig {
    fn default() -> Self {
        Self {
            call_duration_ns: 0.0,
        }
    }
}

/// The timestamped trace of one rank.
#[derive(Debug, Clone, PartialEq)]
pub struct RankTrace {
    /// Rank id.
    pub rank: u32,
    /// Records in call order; first is `Init`, last is `Finalize`.
    pub records: Vec<TraceRecord>,
}

/// A full job trace: what `liballprof` would have written for each rank.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// World size.
    pub nranks: u32,
    /// Per-rank traces indexed by rank.
    pub ranks: Vec<RankTrace>,
}

impl Trace {
    /// Total number of records across ranks.
    pub fn num_records(&self) -> usize {
        self.ranks.iter().map(|r| r.records.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_allocates_requests() {
        let mut b = ProgramBuilder::new();
        let r0 = b.irecv(1, 100, 0);
        let r1 = b.isend(1, 100, 0);
        b.waitall(vec![r0, r1]);
        let p = b.build();
        assert_eq!(r0, 0);
        assert_eq!(r1, 1);
        assert_eq!(p.ops.len(), 3);
    }

    #[test]
    fn comp_phases_coalesce() {
        let mut b = ProgramBuilder::new();
        b.comp(10.0).comp(5.0);
        b.send(0, 1, 0);
        b.comp(0.0); // dropped
        let p = b.build();
        assert_eq!(p.ops.len(), 2);
        assert_eq!(p.ops[0], Op::Comp(15.0));
    }

    #[test]
    fn tracer_gaps_equal_compute() {
        let set = ProgramSet::spmd(2, |rank, b| {
            b.comp(1_000.0);
            if rank == 0 {
                b.send(1, 4, 0);
            } else {
                b.recv(0, 4, 0);
            }
            b.comp(500.0);
            b.allreduce(8);
        });
        let tr = set.trace(&TracerConfig::default());
        assert_eq!(tr.nranks, 2);
        let r0 = &tr.ranks[0];
        // Init, Send, Allreduce, Finalize.
        assert_eq!(r0.records.len(), 4);
        // Gap before the send is the first compute phase.
        assert_eq!(r0.records[1].start - r0.records[0].end, 1_000.0);
        // Gap between send end and allreduce start is the second phase.
        assert_eq!(r0.records[2].start - r0.records[1].end, 500.0);
        assert_eq!(r0.records[3].kind, CallKind::Finalize);
    }

    #[test]
    fn tracer_honours_call_duration() {
        let set = ProgramSet::spmd(1, |_, b| {
            b.barrier();
            b.barrier();
        });
        let tr = set.trace(&TracerConfig {
            call_duration_ns: 7.0,
        });
        let recs = &tr.ranks[0].records;
        assert_eq!(recs[1].end - recs[1].start, 7.0);
        assert_eq!(recs[2].start, recs[1].end);
    }

    #[test]
    fn num_calls_counts_only_mpi() {
        let set = ProgramSet::spmd(2, |_, b| {
            b.comp(10.0);
            b.barrier();
            b.comp(10.0);
            b.allreduce(8);
        });
        assert_eq!(set.num_calls(), 4);
    }

    #[test]
    #[should_panic(expected = "empty program set")]
    fn empty_set_panics() {
        ProgramSet::new(vec![]);
    }
}

//! Parser fuzzing: mutated trace bytes must never panic the parser.
//!
//! Starts from a valid round-trippable trace, applies randomised byte- and
//! line-level corruption (truncation, bit flips, splices, line deletion and
//! duplication), and asserts the only two legal outcomes: a clean parse or
//! a typed [`ParseError`]. Any panic fails the property. This is the
//! regression net behind the self-healing pipeline: upstream layers
//! (cache quarantine, campaign error reports) rely on the parser
//! surfacing corruption as `Err`, never aborting the process.

use llamp_trace::text::{parse_trace, write_trace};
use llamp_trace::{ProgramSet, TracerConfig};
use proptest::prelude::*;

fn base_trace_text() -> String {
    let tr = ProgramSet::spmd(2, |rank, b| {
        b.comp(1_000.0);
        if rank == 0 {
            let r = b.isend(1, 3_500, 15);
            b.comp(250.0);
            b.wait(r);
        } else {
            let r = b.irecv(0, 3_500, 15);
            b.wait(r);
        }
        b.allreduce(8);
        b.sendrecv(1 - rank, 64, 1, 1 - rank, 64, 1);
        b.barrier();
        b.bcast(1024, 0);
        b.reduce(512, 1);
    })
    .trace(&TracerConfig::default());
    write_trace(&tr)
}

/// One corruption step, described as data so strategies stay `Clone`.
#[derive(Debug, Clone)]
enum Mutation {
    /// Cut the input off at a relative position.
    Truncate(f64),
    /// XOR one byte with a mask.
    FlipByte { pos: f64, mask: u8 },
    /// Insert junk bytes at a relative position.
    Splice { pos: f64, junk: Vec<u8> },
    /// Remove one line.
    DeleteLine(f64),
    /// Repeat one line (duplicate @rank headers, double records).
    DuplicateLine(f64),
}

fn mutation_strategy() -> impl Strategy<Value = Mutation> {
    prop_oneof![
        (0.0f64..1.0).prop_map(Mutation::Truncate),
        (0.0f64..1.0, 1u8..=255).prop_map(|(pos, mask)| Mutation::FlipByte { pos, mask }),
        ((0.0f64..1.0), prop::collection::vec(0u8..=255, 1..16))
            .prop_map(|(pos, junk)| Mutation::Splice { pos, junk }),
        (0.0f64..1.0).prop_map(Mutation::DeleteLine),
        (0.0f64..1.0).prop_map(Mutation::DuplicateLine),
    ]
}

fn apply(text: &str, m: &Mutation) -> String {
    let mut bytes = text.as_bytes().to_vec();
    let at = |rel: f64, len: usize| ((rel * len as f64) as usize).min(len.saturating_sub(1));
    match m {
        Mutation::Truncate(rel) => {
            let n = at(*rel, bytes.len());
            bytes.truncate(n);
        }
        Mutation::FlipByte { pos, mask } => {
            if !bytes.is_empty() {
                let n = at(*pos, bytes.len());
                bytes[n] ^= mask;
            }
        }
        Mutation::Splice { pos, junk } => {
            let n = at(*pos, bytes.len());
            for (i, b) in junk.iter().enumerate() {
                bytes.insert(n + i, *b);
            }
        }
        Mutation::DeleteLine(rel) => {
            let mut lines: Vec<&str> = text.lines().collect();
            if !lines.is_empty() {
                let n = at(*rel, lines.len());
                lines.remove(n);
            }
            return lines.join("\n");
        }
        Mutation::DuplicateLine(rel) => {
            let mut lines: Vec<&str> = text.lines().collect();
            if !lines.is_empty() {
                let n = at(*rel, lines.len());
                lines.insert(n, lines[n]);
            }
            return lines.join("\n");
        }
    }
    // Byte-level damage can break UTF-8; the parser takes &str, so model
    // what a real reader would hand it after lossy decoding.
    String::from_utf8_lossy(&bytes).into_owned()
}

proptest! {
    #[test]
    fn mutated_traces_never_panic(
        mutations in prop::collection::vec(mutation_strategy(), 1..6),
    ) {
        let mut text = base_trace_text();
        for m in &mutations {
            text = apply(&text, m);
        }
        // Ok (the damage happened to stay well-formed) and Err are both
        // legal; a panic aborts the test binary and fails the property.
        let _ = parse_trace(&text);
    }

    #[test]
    fn arbitrary_garbage_never_panics(
        junk in prop::collection::vec(0u8..=255, 0..512),
    ) {
        let text = String::from_utf8_lossy(&junk).into_owned();
        let _ = parse_trace(&text);
    }
}

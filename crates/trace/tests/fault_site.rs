//! The `trace.parse.corrupt` chaos site in its own test binary: the fault
//! registry is process-global, so this cannot share a process with the
//! fuzz tests without racing over who consumes the injection.

use llamp_trace::text::parse_trace;
use llamp_trace::{ProgramSet, TracerConfig};

#[test]
fn injected_corruption_is_a_typed_error() {
    let text = llamp_trace::text::write_trace(
        &ProgramSet::spmd(1, |_, b| {
            b.comp(10.0);
            b.barrier();
        })
        .trace(&TracerConfig::default()),
    );
    llamp_faults::configure("trace.parse.corrupt:1", 7).unwrap();
    let e = parse_trace(&text).unwrap_err();
    assert!(e.message.contains("injected fault"));
    // One-shot count arm: the parser works again without reconfiguration.
    assert!(parse_trace(&text).is_ok());
    llamp_faults::clear();
    assert!(parse_trace(&text).is_ok());
}

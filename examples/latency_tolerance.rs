//! Latency-tolerance analysis of three real application skeletons — the
//! Fig. 1 workflow as a library user would run it.
//!
//! Run with `cargo run --release --example latency_tolerance`.

use llamp::core::Analyzer;
use llamp::model::LogGPSParams;
use llamp::schedgen::{graph_of_programs, GraphConfig};
use llamp::util::time::{format_ns, us};
use llamp::workloads::App;

fn main() {
    println!("network latency tolerance at 8 ranks (CSCS test-bed parameters)\n");
    for app in [App::Milc, App::Lulesh, App::Icon] {
        let set = app.programs(8, 10);
        let graph = graph_of_programs(&set, &GraphConfig::paper()).unwrap();
        let params = LogGPSParams::cscs_testbed(8).with_o(app.paper_o());
        let analyzer = Analyzer::new(&graph, &params);

        let zones = analyzer.tolerance_zones(params.l + us(50_000.0));
        println!("{}:", app.name());
        println!("  baseline runtime  {}", format_ns(zones.baseline_runtime));
        println!("  1% tolerance      +{}", format_ns(zones.pct1));
        println!("  2% tolerance      +{}", format_ns(zones.pct2));
        println!("  5% tolerance      +{}", format_ns(zones.pct5));

        // The λ_L staircase: how many messages sit un-overlapped on the
        // critical path as latency grows.
        let profile = analyzer.profile(params.l, params.l + us(1000.0));
        let lcs = profile.critical_latencies();
        println!(
            "  λ_L from {} to {} across {} critical latencies in (L, L+1ms)",
            profile.lambda(params.l),
            profile.lambda(params.l + us(1000.0)),
            lcs.len()
        );
        println!();
    }
    println!(
        "MILC tolerates the least added latency and ICON the most — the\n\
         ordering of the paper's Fig. 1."
    );
}

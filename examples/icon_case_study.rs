//! The ICON case study (paper §IV) in miniature: collective-algorithm
//! choice and network-topology analysis on the same traced graph.
//!
//! Run with `cargo run --release --example icon_case_study`.

use llamp::core::{Analyzer, Binding};
use llamp::model::LogGPSParams;
use llamp::schedgen::{build_graph, AllreduceAlgo, GraphConfig};
use llamp::topo::{Dragonfly, FatTree};
use llamp::trace::TracerConfig;
use llamp::util::time::{format_ns, us};
use llamp::workloads::icon;

fn main() {
    let ranks = 64u32;
    let params = LogGPSParams::piz_daint(ranks).with_o(us(7.4));
    let set = icon::programs(&icon::Config::paper(ranks, 8));
    let trace = set.trace(&TracerConfig::default());

    // --- Part 1: collective algorithms (Fig. 10) -----------------------
    println!("== allreduce algorithm (ICON, {ranks} ranks) ==");
    for (label, algo) in [
        ("recursive doubling", AllreduceAlgo::RecursiveDoubling),
        ("ring              ", AllreduceAlgo::Ring),
    ] {
        let mut cfg = GraphConfig::paper();
        cfg.collectives.allreduce = algo;
        let graph = build_graph(&trace, &cfg).unwrap();
        let a = Analyzer::new(&graph, &params);
        let tol = a.tolerance_pct(5.0, params.l + us(1_000_000.0));
        let e = a.evaluate(params.l + us(100.0));
        println!(
            "  {label}: 5% tolerance +{}, λ_L@100µs = {:.0}, ρ_L = {:.1}%",
            format_ns(tol),
            e.lambda,
            100.0 * e.rho(params.l + us(100.0))
        );
    }

    // --- Part 2: topology wire latency (Fig. 11) -----------------------
    println!("\n== per-wire latency (d_switch = 108 ns, dense packing) ==");
    let graph = build_graph(&trace, &GraphConfig::paper()).unwrap();
    let placement: Vec<u32> = (0..ranks).collect();
    let base_wire = 274.0;
    for (label, binding) in [
        (
            "fat tree (k=16) ",
            Binding::wire(&params, &FatTree::new(16), &placement, 108.0),
        ),
        (
            "dragonfly (8,4,8)",
            Binding::wire(&params, &Dragonfly::paper(), &placement, 108.0),
        ),
    ] {
        let a = Analyzer::with_binding(&graph, binding, base_wire);
        let prof = a.profile(base_wire, 10_000.0);
        let t274 = prof.runtime(274.0);
        let t424 = prof.runtime(424.0);
        let tol = a.tolerance_pct(1.0, 2_000_000.0);
        println!(
            "  {label}: T(274ns) = {}, T(424ns) = {} (+{:.3}%), 1% tol at wire = {:.1} µs",
            format_ns(t274),
            format_ns(t424),
            100.0 * (t424 - t274) / t274,
            (base_wire + tol) / 1_000.0,
        );
    }
    println!(
        "\nThe FEC-driven wire-latency increase (274 → 424 ns) leaves ICON's\n\
         runtime essentially unchanged under both topologies (paper §IV-2)."
    );
}

//! The latency-injector pitfalls of paper Fig. 8, reproduced in the
//! simulator.
//!
//! Run with `cargo run --release --example injector_demo`.

use llamp::model::LogGPSParams;
use llamp::sim::injector::{fig8_scenario, InjectorDesign};

fn main() {
    let params = LogGPSParams {
        l: 1_000.0,
        o: 300.0,
        g: 0.0,
        big_g: 1.0,
        big_o: 0.0,
        s: u64::MAX,
        p: 2,
    };
    let bytes = 101;
    let delta = 5_000.0;

    println!(
        "two eager sends, receiver posted first; o = {} ns, L0 = {} ns, ∆L = {} ns\n",
        params.o, params.l, delta
    );
    println!("{:<38}{:>10}{:>10}", "injector design", "t_R0", "t_R1");
    for (name, d) in [
        ("none (baseline)", InjectorDesign::None),
        (
            "B: delay inside send (Underwood)",
            InjectorDesign::SenderDelay,
        ),
        (
            "C: receiver progress thread",
            InjectorDesign::ProgressThread,
        ),
        (
            "D: delay thread (paper's design)",
            InjectorDesign::DelayThread,
        ),
    ] {
        let out = fig8_scenario(params, bytes, delta, d);
        println!("{name:<38}{:>10.0}{:>10.0}", out.t_r0, out.t_r1);
    }
    println!(
        "\nOnly design D adds exactly one ∆L to the receiver and none to the\n\
         sender — the intended flow-level behaviour (Fig. 8A)."
    );
}

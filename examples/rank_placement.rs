//! Rank placement with the LP-guided heuristic (paper Appendix J).
//!
//! Run with `cargo run --release --example rank_placement`.

use llamp::core::placement::{
    block_mapping, evaluate_mapping, llamp_placement, random_mapping, round_robin_mapping,
    volume_greedy_mapping, Machine,
};
use llamp::model::LogGPSParams;
use llamp::schedgen::{graph_of_programs, GraphConfig};
use llamp::trace::ProgramSet;
use llamp::util::time::format_ns;

fn main() {
    // Four nodes of four slots; ranks talk to rank+8 — the block mapping
    // puts every chatty pair on different nodes.
    let ranks = 16u32;
    let machine = Machine {
        nodes: 4,
        slots_per_node: 4,
        intra_l: 200.0,
        inter_l: 3_000.0,
    };
    let params = LogGPSParams::cscs_testbed(ranks).with_o(500.0);

    let set = ProgramSet::spmd(ranks, |rank, b| {
        let peer = (rank + 8) % 16;
        // Distinct pair weights keep the makespan strictly improving per
        // accepted swap (on perfectly symmetric patterns the objective is
        // flat until the last pair moves, and the greedy loop — like the
        // paper's Algorithm 3 — stops at the first non-improving swap).
        let weight = 1.0 + (rank % 8) as f64 * 0.4;
        for i in 0..40 {
            b.comp(25_000.0 * weight);
            if rank < peer {
                b.send(peer, 2_048, i);
                b.recv(peer, 2_048, 100 + i);
            } else {
                b.recv(peer, 2_048, i);
                b.send(peer, 2_048, 100 + i);
            }
        }
        b.allreduce(8);
    });
    let graph = graph_of_programs(&set, &GraphConfig::paper()).unwrap();

    println!("predicted runtime under each mapping:\n");
    let block = block_mapping(ranks);
    for (name, mapping) in [
        ("block (MPI default)", block.clone()),
        ("round-robin", round_robin_mapping(ranks, &machine)),
        ("random (seed 42)", random_mapping(ranks, &machine, 42)),
        (
            "volume-greedy (Scotch-like)",
            volume_greedy_mapping(&graph, &machine),
        ),
    ] {
        let t = evaluate_mapping(&graph, &machine, &params, &mapping);
        println!("  {name:<28} {}", format_ns(t));
    }

    let out = llamp_placement(&graph, &machine, &params, block);
    println!(
        "  {:<28} {} ({} swaps, {:.1}% faster than block)",
        "LLAMP (Algorithm 3)",
        format_ns(out.runtime),
        out.swaps,
        100.0 * (out.initial_runtime - out.runtime) / out.initial_runtime
    );
    println!("\nfinal mapping (rank -> slot): {:?}", out.mapping);
}

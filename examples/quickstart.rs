//! Quickstart: the whole LLAMP pipeline on the paper's running example.
//!
//! Builds the two-rank program of Fig. 3/4, traces it, compiles the
//! execution graph, converts it to an LP (Algorithm 1), and reads off all
//! the paper's §II quantities: predicted runtime, latency sensitivity
//! `λ_L`, the critical latency, and the latency tolerance.
//!
//! Run with `cargo run --release --example quickstart`.

use llamp::core::{Binding, GraphLp, ParametricProfile};
use llamp::model::LogGPSParams;
use llamp::schedgen::{build_graph, GraphConfig};
use llamp::trace::text::write_trace;
use llamp::trace::{ProgramSet, TracerConfig};
use llamp::util::time::us;

fn main() {
    // 1. The MPI program (Fig. 4c): rank 0 computes 0.1 µs, sends 4 bytes,
    //    computes 1 µs; rank 1 computes 0.5 µs, receives, computes 1 µs.
    let set = ProgramSet::spmd(2, |rank, b| {
        if rank == 0 {
            b.comp(100.0);
            b.send(1, 4, 0);
            b.comp(us(1.0));
        } else {
            b.comp(us(0.5));
            b.recv(0, 4, 0);
            b.comp(us(1.0));
        }
    });

    // 2. Trace it (what liballprof would record).
    let trace = set.trace(&TracerConfig::default());
    println!("--- liballprof-style trace ---");
    print!("{}", write_trace(&trace));

    // 3. Compile the execution graph (Schedgen).
    let graph = build_graph(&trace, &GraphConfig::eager()).unwrap();
    let (calc, send, recv, _) = graph.kind_counts();
    println!(
        "\nexecution graph: {} vertices ({calc} calc, {send} send, {recv} recv), {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // 4. Bind LogGPS parameters (Fig. 4b: o = 0, G = 5 ns/B) and build the
    //    LP (Algorithm 1).
    let params = LogGPSParams::didactic();
    let binding = Binding::uniform(&params);
    let contracted = graph.contracted();
    let mut lp = GraphLp::build(&contracted, &binding);
    println!(
        "LP: {} variables, {} constraints (from {} contracted vertices)\n",
        lp.model().num_vars(),
        lp.model().num_constraints(),
        contracted.num_vertices()
    );

    // 5. Fig. 5: predict at L = 0.5 µs.
    let p = lp.predict(us(0.5)).unwrap();
    println!(
        "T(L = 0.5 µs)      = {:.3} µs  (paper: 1.615)",
        p.runtime / 1000.0
    );
    println!("λ_L                = {:.0}        (paper: 1)", p.lambda);
    println!(
        "basis stable down to L = {:.3} µs (the critical latency; paper: 0.385)",
        p.l_feasible.0 / 1000.0
    );

    // 6. Fig. 6: tolerance — max L keeping T ≤ 2 µs.
    let tol = lp.tolerance(0.0, us(2.0)).unwrap();
    println!(
        "max L with T ≤ 2µs = {:.3} µs  (paper: 0.885)",
        tol / 1000.0
    );

    // 7. The exact T(L) curve from the parametric backend.
    let prof = ParametricProfile::compute(&contracted, &binding, (0.0, us(2.0)));
    println!(
        "\nT(L) pieces: {}",
        prof.envelope()
            .lines()
            .iter()
            .map(|l| format!("{}·L + {:.0} ns", l.slope, l.intercept))
            .collect::<Vec<_>>()
            .join("  |  ")
    );
    println!("critical latencies: {:?} ns", prof.critical_latencies());
}

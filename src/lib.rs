//! # LLAMP — LogGPS and Linear Programming based Analyzer for MPI Programs
//!
//! A from-scratch Rust reproduction of *"LLAMP: Assessing Network Latency
//! Tolerance of HPC Applications with Linear Programming"* (SC 2024).
//!
//! This facade crate re-exports the whole toolchain:
//!
//! | Crate | Role |
//! |---|---|
//! | [`lp`] | linear-programming substrate (bounded simplex, presolve, ranging, parametric envelopes) |
//! | [`model`] | LogGPS / LogGOPS / HLogGP network models |
//! | [`trace`] | MPI trace records, per-rank programs, liballprof-style text format |
//! | [`schedgen`] | trace → execution graph compiler with collective substitution |
//! | [`sim`] | LogGOPSim-equivalent discrete-event simulator + latency injector |
//! | [`topo`] | Fat Tree / Dragonfly topologies and wire-latency decomposition |
//! | [`core`] | the paper's contribution: graph→LP, λ_L, ρ_L, critical latencies, tolerance, placement |
//! | [`workloads`] | communication-skeleton proxies of the paper's applications |
//! | [`engine`] | scenario campaigns: declarative specs, work-stealing executor, result cache, the `llamp` CLI |
//!
//! See the `examples/` directory for end-to-end walkthroughs, starting with
//! `quickstart.rs`, and `examples/campaign.toml` for the campaign front
//! door (`llamp run examples/campaign.toml`). The campaign spec format is
//! fully documented in `docs/SPEC.md`.
//!
//! ## Quickstart
//!
//! The README quickstart as a library call. This block is a **doctest**
//! — `cargo test --doc` executes it, so the advertised scenario counts,
//! cache behaviour and byte-identity cannot rot:
//!
//! ```
//! use llamp::engine::{run_campaign, CampaignSpec, ExecutorConfig, ResultCache};
//!
//! // The bundled example campaign: 2 workloads × 2 topologies × 2
//! // backends over a 9-point latency grid.
//! let spec = CampaignSpec::parse(
//!     include_str!("../examples/campaign.toml"),
//!     "campaign.toml",
//! )
//! .unwrap();
//! assert_eq!(format!("{:016x}", spec.fingerprint()), "35aadf3bc39a926f");
//!
//! let cache = ResultCache::new();
//! let (first, s1) = run_campaign(&spec, &ExecutorConfig::default(), &cache);
//! assert_eq!(
//!     (s1.jobs_requested, s1.jobs_unique, s1.full_cache_hits, s1.jobs_executed),
//!     (8, 8, 0, 8),
//! );
//! // 9 grid points + 1 tolerance-zone triple per scenario.
//! assert_eq!((s1.cache_hits, s1.cache_misses), (0, 80));
//!
//! // Same campaign against the warm cache: every scenario assembles from
//! // the store and the results JSON is byte-identical.
//! let (second, s2) = run_campaign(&spec, &ExecutorConfig::default(), &cache);
//! assert_eq!(s2.full_cache_hits, 8);
//! assert_eq!((s2.cache_misses, s2.jobs_executed), (0, 0));
//! assert_eq!(first.to_json(), second.to_json());
//! ```

pub use llamp_core as core;
pub use llamp_engine as engine;
pub use llamp_lp as lp;
pub use llamp_model as model;
pub use llamp_schedgen as schedgen;
pub use llamp_sim as sim;
pub use llamp_topo as topo;
pub use llamp_trace as trace;
pub use llamp_util as util;
pub use llamp_workloads as workloads;

//! # LLAMP — LogGPS and Linear Programming based Analyzer for MPI Programs
//!
//! A from-scratch Rust reproduction of *"LLAMP: Assessing Network Latency
//! Tolerance of HPC Applications with Linear Programming"* (SC 2024).
//!
//! This facade crate re-exports the whole toolchain:
//!
//! | Crate | Role |
//! |---|---|
//! | [`lp`] | linear-programming substrate (bounded simplex, presolve, ranging, parametric envelopes) |
//! | [`model`] | LogGPS / LogGOPS / HLogGP network models |
//! | [`trace`] | MPI trace records, per-rank programs, liballprof-style text format |
//! | [`schedgen`] | trace → execution graph compiler with collective substitution |
//! | [`sim`] | LogGOPSim-equivalent discrete-event simulator + latency injector |
//! | [`topo`] | Fat Tree / Dragonfly topologies and wire-latency decomposition |
//! | [`core`] | the paper's contribution: graph→LP, λ_L, ρ_L, critical latencies, tolerance, placement |
//! | [`workloads`] | communication-skeleton proxies of the paper's applications |
//! | [`engine`] | scenario campaigns: declarative specs, work-stealing executor, result cache, the `llamp` CLI |
//!
//! See the `examples/` directory for end-to-end walkthroughs, starting with
//! `quickstart.rs`, and `examples/campaign.toml` for the campaign front
//! door (`llamp run examples/campaign.toml`).

pub use llamp_core as core;
pub use llamp_engine as engine;
pub use llamp_lp as lp;
pub use llamp_model as model;
pub use llamp_schedgen as schedgen;
pub use llamp_sim as sim;
pub use llamp_topo as topo;
pub use llamp_trace as trace;
pub use llamp_util as util;
pub use llamp_workloads as workloads;

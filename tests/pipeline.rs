//! End-to-end pipeline tests: workload → trace → text round-trip →
//! execution graph → analysis, cross-checked against the simulator.

use llamp::core::Analyzer;
use llamp::model::LogGPSParams;
use llamp::schedgen::{build_graph, GraphConfig};
use llamp::sim::{SimConfig, Simulator};
use llamp::trace::text::{parse_trace, write_trace};
use llamp::trace::TracerConfig;
use llamp::util::time::us;
use llamp::workloads::App;

/// The full chain including serialising the trace to the liballprof-style
/// text format and parsing it back must produce identical predictions.
#[test]
fn text_round_trip_preserves_analysis() {
    for app in [App::Lulesh, App::Milc, App::Cloverleaf] {
        let set = app.programs(8, 3);
        let trace = set.trace(&TracerConfig::default());
        let text = write_trace(&trace);
        let parsed = parse_trace(&text).unwrap();
        assert_eq!(trace, parsed, "{}", app.name());

        let params = LogGPSParams::cscs_testbed(8).with_o(app.paper_o());
        let g1 = build_graph(&trace, &GraphConfig::paper()).unwrap();
        let g2 = build_graph(&parsed, &GraphConfig::paper()).unwrap();
        let t1 = Analyzer::new(&g1, &params).baseline_runtime();
        let t2 = Analyzer::new(&g2, &params).baseline_runtime();
        assert_eq!(t1, t2, "{}", app.name());
    }
}

/// The analytical prediction equals a noise-free dataflow replay for every
/// application, at several latencies (the LP *is* the critical path of
/// that schedule).
#[test]
fn prediction_matches_dataflow_simulation() {
    for app in App::ALL {
        let set = app.programs(8, 3);
        let trace = set.trace(&TracerConfig::default());
        let graph = build_graph(&trace, &GraphConfig::paper()).unwrap();
        let params = LogGPSParams::cscs_testbed(8).with_o(app.paper_o());
        let analyzer = Analyzer::new(&graph, &params);
        for delta in [0.0, us(10.0), us(200.0)] {
            let predicted = analyzer.evaluate(params.l + delta).runtime;
            let sim = SimConfig::dataflow(params).with_delta_l(delta);
            let measured = Simulator::new(&graph, sim).run().makespan;
            assert!(
                (predicted - measured).abs() <= 1e-6 * measured.max(1.0),
                "{} at ∆L={delta}: predicted {predicted} vs dataflow {measured}",
                app.name()
            );
        }
    }
}

/// With LogGOPSim-style CPU serialisation the simulator can only be
/// slower, and the prediction error stays within the o-per-event bound.
#[test]
fn serialized_simulation_bounds_prediction_error() {
    for app in [App::Hpcg, App::Icon, App::Lammps] {
        let set = app.programs(8, 3);
        let trace = set.trace(&TracerConfig::default());
        let graph = build_graph(&trace, &GraphConfig::paper()).unwrap();
        let params = LogGPSParams::cscs_testbed(8).with_o(app.paper_o());
        let predicted = Analyzer::new(&graph, &params).baseline_runtime();
        let measured = Simulator::new(&graph, SimConfig::ideal(params))
            .run()
            .makespan;
        assert!(measured >= predicted - 1e-6, "{}", app.name());
        assert!(
            measured <= predicted * 1.35,
            "{}: serialisation gap too large: {measured} vs {predicted}",
            app.name()
        );
    }
}

/// Validation-experiment accuracy: under quiet noise the relative error at
/// every sweep point stays in the paper's few-percent band.
#[test]
fn validation_rrmse_band() {
    use llamp::sim::NoiseConfig;
    use llamp::util::stats;
    for app in [App::Lulesh, App::Milc] {
        let set = app.programs(8, 5);
        let trace = set.trace(&TracerConfig::default());
        let graph = build_graph(&trace, &GraphConfig::paper()).unwrap();
        let params = LogGPSParams::cscs_testbed(8).with_o(app.paper_o());
        let analyzer = Analyzer::new(&graph, &params);

        let mut predicted = Vec::new();
        let mut measured = Vec::new();
        for i in 0..6 {
            let delta = us(20.0) * i as f64;
            predicted.push(analyzer.evaluate(params.l + delta).runtime);
            let cfg = SimConfig::ideal(params)
                .with_delta_l(delta)
                .with_noise(NoiseConfig::quiet(99 + i));
            measured.push(Simulator::new(&graph, cfg).run().makespan);
        }
        let rrmse = stats::rrmse(&predicted, &measured);
        assert!(
            rrmse < 0.05,
            "{}: RRMSE {:.2}% out of band",
            app.name(),
            100.0 * rrmse
        );
    }
}

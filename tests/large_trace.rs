//! Release-scale smoke: the reduced LP must agree with the raw LP on a
//! ≥10⁵-vertex scaled workload, and the partitioned (multi-threaded)
//! reduction must produce byte-identical campaign inputs.
//!
//! Ignored by default — the raw-graph LP solve is only reasonable in
//! release mode. CI and local runs use:
//!
//! ```text
//! cargo test --release --test large_trace -- --ignored
//! ```

use llamp::core::{Binding, GraphLp, ReduceConfig};
use llamp::model::LogGPSParams;
use llamp::schedgen::{graph_of_programs, GraphConfig};
use llamp::util::time::us;
use llamp::workloads::{scaled, App};

/// LULESH inflated ~100× in outer iterations: ≈1.2 × 10⁵ vertices, big
/// enough to cross the default partitioned-reduction threshold while
/// keeping the raw (unreduced) LP solvable in CI time.
fn large_graph() -> llamp::schedgen::ExecGraph {
    let set = scaled(App::Lulesh, 1, 100);
    graph_of_programs(&set, &GraphConfig::paper()).expect("scaled LULESH compiles")
}

#[test]
#[ignore = "release-mode scale test: run with --release -- --ignored"]
fn reduced_lp_matches_raw_lp_at_scale() {
    let g = large_graph();
    assert!(
        g.num_vertices() >= 100_000,
        "scale floor: got {} vertices",
        g.num_vertices()
    );

    let params = LogGPSParams::cscs_testbed(8).with_o(us(6.0));
    let binding = Binding::uniform(&params);

    // Raw LP: the ground truth Algorithm-1 model, no reduction at all.
    let raw = GraphLp::build(&g, &binding)
        .predict(params.l)
        .expect("raw LP solves");

    // Reduced LP, serial global path and partitioned path at several
    // worker counts. Objective and latency sensitivity (the dual the
    // paper reports) must match the raw model to solver tolerance, and
    // the partitioned predictions must be *bit-identical* to the serial
    // reduced ones — reduction determinism end to end.
    let serial = reduce_predict(&g, &binding, params.l, &ReduceConfig::default());
    assert!(
        llamp::util::approx_eq(raw.runtime, serial.runtime, 1e-3, 1e-9),
        "objective drifted: raw {} vs reduced {}",
        raw.runtime,
        serial.runtime
    );
    assert!(
        llamp::util::approx_eq(raw.lambda, serial.lambda, 1e-6, 1e-9),
        "lambda drifted: raw {} vs reduced {}",
        raw.lambda,
        serial.lambda
    );

    let base = {
        let cfg = ReduceConfig {
            threads: 1,
            par_threshold: 0,
            ..ReduceConfig::default()
        };
        reduce_predict(&g, &binding, params.l, &cfg)
    };
    for threads in [2usize, 4] {
        let cfg = ReduceConfig {
            threads,
            par_threshold: 0,
            ..ReduceConfig::default()
        };
        let p = reduce_predict(&g, &binding, params.l, &cfg);
        assert_eq!(
            p.runtime.to_bits(),
            base.runtime.to_bits(),
            "partitioned objective not bit-identical at {threads} threads"
        );
        assert_eq!(
            p.lambda.to_bits(),
            base.lambda.to_bits(),
            "partitioned lambda not bit-identical at {threads} threads"
        );
    }
}

fn reduce_predict(
    g: &llamp::schedgen::ExecGraph,
    binding: &Binding,
    l: f64,
    cfg: &ReduceConfig,
) -> llamp::core::Prediction {
    let reduced = g.reduced(cfg);
    GraphLp::build(&reduced, binding)
        .predict(l)
        .expect("reduced LP solves")
}

//! Closing the measurement loop (paper §III-B): Netgauge-style parameter
//! fitting against the simulator, then analysis with the *fitted*
//! parameters must match analysis with the ground truth.

use llamp::core::Analyzer;
use llamp::model::netgauge::{measure, MeasureConfig};
use llamp::model::LogGPSParams;
use llamp::schedgen::{build_graph, GraphConfig};
use llamp::sim::netgauge_impl::SimNetwork;
use llamp::trace::TracerConfig;
use llamp::workloads::App;

#[test]
fn fitted_parameters_reproduce_predictions() {
    let truth = LogGPSParams {
        l: 3_000.0,
        o: 5_000.0,
        g: 0.0,
        big_g: 0.018,
        big_o: 0.0,
        s: 256 * 1024,
        p: 8,
    };
    // Measure the simulated cluster.
    let mut net = SimNetwork::new(truth);
    let fitted = measure(&mut net, &MeasureConfig::default()).into_params(truth);

    // Analyse LULESH with truth vs. fitted parameters.
    let set = App::Lulesh.programs(8, 3);
    let graph = build_graph(&set.trace(&TracerConfig::default()), &GraphConfig::paper()).unwrap();
    let t_truth = Analyzer::new(&graph, &truth).baseline_runtime();
    let t_fit = Analyzer::new(&graph, &fitted).baseline_runtime();
    assert!(
        (t_truth - t_fit).abs() < 0.02 * t_truth,
        "truth {t_truth} vs fitted {t_fit}"
    );
}

#[test]
fn fitting_is_robust_across_parameter_ranges() {
    for (l, o, g_per_byte) in [
        (1_400.0, 7_400.0, 0.013), // Piz Daint
        (3_000.0, 5_000.0, 0.018), // CSCS test-bed
        (10_000.0, 1_000.0, 0.1),  // a slow cloud-ish network
    ] {
        let truth = LogGPSParams {
            l,
            o,
            g: 0.0,
            big_g: g_per_byte,
            big_o: 0.0,
            s: u64::MAX,
            p: 2,
        };
        let mut net = SimNetwork::new(truth);
        let fit = measure(&mut net, &MeasureConfig::default());
        assert!((fit.l - l).abs() / l < 0.05, "L: {} vs {l}", fit.l);
        assert!((fit.o - o).abs() / o < 0.05, "o: {} vs {o}", fit.o);
        assert!(
            (fit.big_g - g_per_byte).abs() / g_per_byte < 0.05,
            "G: {} vs {g_per_byte}",
            fit.big_g
        );
    }
}

//! Latency tolerance consistency: the LP's flipped objective, the
//! parametric envelope inversion, and a brute-force bisection on the
//! simulator must all agree.

use llamp::core::{Analyzer, Binding, GraphLp};
use llamp::model::LogGPSParams;
use llamp::schedgen::{build_graph, GraphConfig};
use llamp::sim::{SimConfig, Simulator};
use llamp::trace::TracerConfig;
use llamp::util::time::us;
use llamp::workloads::App;

fn tolerance_by_bisection(
    graph: &llamp::schedgen::ExecGraph,
    params: &LogGPSParams,
    cap: f64,
) -> f64 {
    // Noise-free dataflow replay is the analytical model; bisect the
    // largest ∆L with makespan ≤ cap.
    let runtime = |delta: f64| {
        Simulator::new(graph, SimConfig::dataflow(*params).with_delta_l(delta))
            .run()
            .makespan
    };
    let mut lo = 0.0f64;
    let mut hi = us(1_000_000.0);
    assert!(runtime(lo) <= cap, "cap below baseline");
    assert!(runtime(hi) > cap, "cap never exceeded in window");
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if runtime(mid) <= cap {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[test]
fn three_ways_to_tolerance_agree() {
    // Small graphs only: the LP leg runs the dense-inverse simplex, which
    // is O(rows²) per pivot — LULESH/HPCG-sized models belong to the
    // envelope backend (DESIGN.md §5), covered by `tolerance.rs`'s other
    // tests and `abl_backends`.
    for app in [App::Milc, App::Cloverleaf] {
        let set = app.programs(8, 2);
        let trace = set.trace(&TracerConfig::default());
        let graph = build_graph(&trace, &GraphConfig::paper()).unwrap();
        let params = LogGPSParams::cscs_testbed(8).with_o(app.paper_o());
        let analyzer = Analyzer::new(&graph, &params);

        let t0 = analyzer.baseline_runtime();
        let cap = 1.02 * t0;

        // 1. Envelope inversion.
        let tol_env = analyzer.tolerance_pct(2.0, params.l + us(1_000_000.0));

        // 2. LP with flipped objective (on the contracted graph).
        let binding = Binding::uniform(&params);
        let contracted = graph.contracted();
        let mut lp = GraphLp::build(&contracted, &binding);
        let tol_lp = lp.tolerance(0.0, cap).unwrap() - params.l;

        // 3. Bisection against the dataflow simulator.
        let tol_sim = tolerance_by_bisection(&graph, &params, cap);

        let rel = |a: f64, b: f64| (a - b).abs() / b.max(1.0);
        assert!(
            rel(tol_env, tol_lp) < 1e-6,
            "{}: envelope {tol_env} vs LP {tol_lp}",
            app.name()
        );
        assert!(
            rel(tol_env, tol_sim) < 1e-3,
            "{}: envelope {tol_env} vs bisection {tol_sim}",
            app.name()
        );
    }
}

#[test]
fn tolerance_is_monotone_in_percentage() {
    let set = App::Icon.programs(8, 4);
    let trace = set.trace(&TracerConfig::default());
    let graph = build_graph(&trace, &GraphConfig::paper()).unwrap();
    let params = LogGPSParams::cscs_testbed(8).with_o(App::Icon.paper_o());
    let analyzer = Analyzer::new(&graph, &params);
    let hi = params.l + us(10_000_000.0);
    let mut prev = 0.0;
    for pct in [0.5, 1.0, 2.0, 5.0, 10.0] {
        let tol = analyzer.tolerance_pct(pct, hi);
        assert!(tol >= prev, "tolerance not monotone at {pct}%");
        prev = tol;
    }
}

#[test]
fn runtime_at_tolerance_equals_cap() {
    let set = App::Lulesh.programs(8, 4);
    let trace = set.trace(&TracerConfig::default());
    let graph = build_graph(&trace, &GraphConfig::paper()).unwrap();
    let params = LogGPSParams::cscs_testbed(8).with_o(App::Lulesh.paper_o());
    let analyzer = Analyzer::new(&graph, &params);
    let t0 = analyzer.baseline_runtime();
    for pct in [1.0, 5.0] {
        let tol = analyzer.tolerance_pct(pct, params.l + us(1_000_000.0));
        let at = analyzer.evaluate(params.l + tol).runtime;
        let cap = t0 * (1.0 + pct / 100.0);
        assert!(
            (at - cap).abs() < 1e-6 * cap,
            "{pct}%: runtime at tolerance {at} vs cap {cap}"
        );
    }
}

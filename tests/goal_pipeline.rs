//! GOAL serialisation as a pipeline stage: a graph written to the GOAL
//! dialect and parsed back must analyse identically — the property that
//! lets schedules be stored and shared like LogGOPSim's.

use llamp::core::Analyzer;
use llamp::model::LogGPSParams;
use llamp::schedgen::goal::{parse_goal, write_goal};
use llamp::schedgen::{build_graph, GraphConfig};
use llamp::trace::TracerConfig;
use llamp::util::time::us;
use llamp::workloads::App;

#[test]
fn goal_round_trip_preserves_all_metrics() {
    for app in [App::Milc, App::Openmx] {
        let set = app.programs(8, 2);
        let trace = set.trace(&TracerConfig::default());
        let graph = build_graph(&trace, &GraphConfig::paper()).unwrap();
        let text = write_goal(&graph);
        let parsed = parse_goal(&text).unwrap();

        let params = LogGPSParams::cscs_testbed(8).with_o(app.paper_o());
        let a1 = Analyzer::new(&graph, &params);
        let a2 = Analyzer::new(&parsed, &params);
        for delta in [0.0, us(50.0)] {
            let e1 = a1.evaluate(params.l + delta);
            let e2 = a2.evaluate(params.l + delta);
            assert_eq!(e1.runtime, e2.runtime, "{} ∆L={delta}", app.name());
            assert_eq!(e1.lambda, e2.lambda, "{} ∆L={delta}", app.name());
        }
        let z1 = a1.tolerance_zones(params.l + us(100_000.0));
        let z2 = a2.tolerance_zones(params.l + us(100_000.0));
        assert_eq!(z1, z2, "{}", app.name());
    }
}

#[test]
fn goal_text_is_stable() {
    // Writing twice produces identical text (no hidden nondeterminism).
    let set = App::Cloverleaf.programs(4, 2);
    let trace = set.trace(&TracerConfig::default());
    let graph = build_graph(&trace, &GraphConfig::paper()).unwrap();
    assert_eq!(write_goal(&graph), write_goal(&graph));
}

//! The README quickstart transcript, held truthful by execution: the
//! deterministic lines of the printed run summary (scenario counts,
//! cache hits/misses, campaign fingerprint) are extracted from README.md
//! and compared against a real run of `examples/campaign.toml`. If the
//! example campaign or the engine's accounting changes, this test fails
//! until the README transcript is regenerated.
//!
//! (The `threads:`/`elapsed:` line is machine-dependent and deliberately
//! not asserted.)

use llamp::engine::{run_campaign, CampaignSpec, ExecutorConfig, ResultCache};

fn readme() -> String {
    std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/README.md")).unwrap()
}

fn readme_line(prefix: &str) -> String {
    readme()
        .lines()
        .find(|l| l.trim_start().starts_with(prefix))
        .unwrap_or_else(|| panic!("README quickstart lost its '{prefix}' line"))
        .trim()
        .to_string()
}

#[test]
fn readme_quickstart_transcript_matches_a_real_run() {
    let spec = CampaignSpec::parse(
        include_str!("../examples/campaign.toml"),
        "examples/campaign.toml",
    )
    .unwrap();

    // The fingerprint printed in the README's `campaign 'example' (…)`
    // line is the canonical spec hash.
    let fp_line = readme_line("campaign 'example'");
    assert_eq!(
        fp_line,
        format!("campaign 'example' ({:016x})", spec.fingerprint()),
        "README fingerprint is stale"
    );

    let cache = ResultCache::new();
    let (result, summary) = run_campaign(&spec, &ExecutorConfig::default(), &cache);
    assert!(result.scenarios.iter().all(|s| s.outcome.is_ok()));

    // summary.render() = "scenarios: …\ncache: …\nthreads: …"; the first
    // two lines are deterministic and must appear verbatim in the README.
    let rendered = summary.render();
    let mut lines = rendered.lines();
    let scenarios_line = lines.next().unwrap();
    let cache_line = lines.next().unwrap();
    assert_eq!(
        readme_line("scenarios:"),
        scenarios_line,
        "README 'scenarios:' transcript line is stale"
    );
    assert_eq!(
        readme_line("cache:"),
        cache_line,
        "README 'cache:' transcript line is stale"
    );
}

//! Bandwidth (`G`) sensitivity analysis — the §VI / Eq. 4 extension:
//! "each term in max represents the cost of a path … `s_i` is approximately
//! the number of bytes contained in messages along each path", so `λ_G`
//! measures the total message size on the critical path.

use llamp::core::{evaluate, Analyzer, Binding, GraphLp, ParametricProfile};
use llamp::model::LogGPSParams;
use llamp::schedgen::{build_graph, GraphConfig};
use llamp::trace::{ProgramSet, TracerConfig};
use llamp::util::time::us;
use llamp::workloads::App;

fn two_rank_pingpong(bytes: u64) -> llamp::schedgen::ExecGraph {
    let set = ProgramSet::spmd(2, |rank, b| {
        b.comp(us(1.0));
        if rank == 0 {
            b.send(1, bytes, 0);
            b.recv(1, bytes, 1);
        } else {
            b.recv(0, bytes, 0);
            b.send(0, bytes, 1);
        }
        b.comp(us(1.0));
    });
    build_graph(&set.trace(&TracerConfig::default()), &GraphConfig::eager()).unwrap()
}

/// λ_G equals the byte count on the critical path: a ping-pong of two
/// s-byte messages has λ_G = 2(s−1).
#[test]
fn lambda_g_counts_bytes_on_critical_path() {
    let bytes = 10_000u64;
    let g = two_rank_pingpong(bytes);
    let params = LogGPSParams::cscs_testbed(2).with_o(100.0);
    let binding = Binding::bandwidth(&params);
    // Evaluate at a G large enough that the wire dominates local compute.
    let e = evaluate(&g, &binding, 1.0);
    assert_eq!(e.lambda, 2.0 * (bytes - 1) as f64, "λ_G = {}", e.lambda);
}

/// Evaluating the bandwidth binding at the configured G must equal
/// evaluating the latency binding at the configured L — the same point in
/// parameter space.
#[test]
fn bandwidth_and_latency_bindings_agree_at_base_point() {
    for app in [App::Milc, App::Cloverleaf] {
        let set = app.programs(8, 3);
        let g = build_graph(&set.trace(&TracerConfig::default()), &GraphConfig::paper()).unwrap();
        let params = LogGPSParams::cscs_testbed(8).with_o(app.paper_o());
        let t_lat = evaluate(&g, &Binding::uniform(&params), params.l).runtime;
        let t_bw = evaluate(&g, &Binding::bandwidth(&params), params.big_g).runtime;
        assert!(
            (t_lat - t_bw).abs() < 1e-6 * t_lat,
            "{}: {t_lat} vs {t_bw}",
            app.name()
        );
    }
}

/// Bandwidth tolerance via the LP's flipped objective: the maximum G
/// (slowest per-byte rate) keeping the runtime under a cap, checked
/// against the envelope inversion.
#[test]
fn bandwidth_tolerance_lp_matches_envelope() {
    let g = two_rank_pingpong(50_000).contracted();
    let params = LogGPSParams::cscs_testbed(2).with_o(100.0);
    let binding = Binding::bandwidth(&params);

    let base = evaluate(&g, &binding, params.big_g).runtime;
    let cap = 1.10 * base;

    let mut lp = GraphLp::build(&g, &binding);
    let tol_lp = lp.tolerance(0.0, cap).unwrap();

    let prof = ParametricProfile::compute(&g, &binding, (0.0, 10.0));
    let tol_env = prof.tolerance(cap).unwrap();

    assert!(
        (tol_lp - tol_env).abs() < 1e-9 * (1.0 + tol_env),
        "LP {tol_lp} vs envelope {tol_env}"
    );
    // The runtime at the tolerance hits the cap exactly.
    let at = evaluate(&g, &binding, tol_env).runtime;
    assert!((at - cap).abs() < 1e-6 * cap);
}

/// T(G) is convex nondecreasing and λ_G is a nondecreasing staircase,
/// exactly like the latency analysis.
#[test]
fn bandwidth_profile_is_convex_monotone() {
    let set = App::Lammps.programs(8, 3);
    let g = build_graph(&set.trace(&TracerConfig::default()), &GraphConfig::paper()).unwrap();
    let params = LogGPSParams::cscs_testbed(8).with_o(App::Lammps.paper_o());
    let binding = Binding::bandwidth(&params);
    let prof = ParametricProfile::compute(&g, &binding, (0.0, 2.0));
    let mut prev_t = f64::NEG_INFINITY;
    let mut prev_lam = -1.0;
    for i in 0..=40 {
        let gv = 0.05 * i as f64;
        let t = prof.runtime(gv);
        let lam = prof.lambda(gv);
        assert!(t >= prev_t - 1e-9);
        assert!(lam >= prev_lam - 1e-9);
        prev_t = t;
        prev_lam = lam;
    }
}

/// The Analyzer facade works identically under the bandwidth binding:
/// tolerance zones answer "how much slower may the per-byte rate get".
#[test]
fn analyzer_bandwidth_zones() {
    let set = App::Hpcg.programs(8, 3);
    let g = build_graph(&set.trace(&TracerConfig::default()), &GraphConfig::paper()).unwrap();
    let params = LogGPSParams::cscs_testbed(8).with_o(App::Hpcg.paper_o());
    let a = Analyzer::with_binding(&g, Binding::bandwidth(&params), params.big_g);
    // HPCG hides its halos well: only the 8-byte dot-product reductions sit
    // on the critical path, so the admissible per-byte slowdown is huge —
    // search a wide G window (ns/byte).
    let zones = a.tolerance_zones(1e6);
    assert!(zones.pct1 > 0.0);
    assert!(zones.pct1 <= zones.pct2 && zones.pct2 <= zones.pct5);
    assert!(zones.pct1.is_finite());
}

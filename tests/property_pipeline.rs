//! Property tests over the full pipeline with randomly generated —
//! deadlock-free by construction — SPMD communication patterns.
//!
//! Pattern generator: a sequence of *phases*; each phase posts a random
//! set of matched nonblocking messages (every send paired with a receive
//! posted in the same phase) followed by a `Waitall` and optional random
//! collective + compute. Nonblocking posting plus phase-local matching
//! guarantees acyclic graphs for any draw.

use llamp::core::{evaluate, Binding, ParametricProfile};
use llamp::model::LogGPSParams;
use llamp::schedgen::{build_graph, GraphConfig};
use llamp::sim::{SimConfig, Simulator};
use llamp::trace::text::{parse_trace, write_trace};
use llamp::trace::{ProgramBuilder, ProgramSet, TracerConfig};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum PhaseColl {
    None,
    Barrier,
    Allreduce(u64),
    Bcast(u64, u32),
}

#[derive(Debug, Clone)]
struct Phase {
    /// Matched messages: (src, dst, bytes); src != dst.
    messages: Vec<(u32, u32, u64)>,
    comp_ns: Vec<f64>,
    coll: PhaseColl,
}

#[derive(Debug, Clone)]
struct Pattern {
    ranks: u32,
    phases: Vec<Phase>,
}

fn pattern_strategy() -> impl Strategy<Value = Pattern> {
    (2u32..7).prop_flat_map(|ranks| {
        let msg = (0..ranks, 0..ranks, 1u64..300_000)
            .prop_filter_map("no self messages", move |(a, b, bytes)| {
                (a != b).then_some((a, b, bytes))
            });
        let coll = prop_oneof![
            3 => Just(PhaseColl::None),
            1 => Just(PhaseColl::Barrier),
            1 => (1u64..4096).prop_map(PhaseColl::Allreduce),
            1 => (1u64..4096, 0..ranks).prop_map(|(b, r)| PhaseColl::Bcast(b, r)),
        ];
        let phase = (
            prop::collection::vec(msg, 0..6),
            prop::collection::vec(0.0f64..200_000.0, ranks as usize),
            coll,
        )
            .prop_map(|(messages, comp_ns, coll)| Phase {
                messages,
                comp_ns,
                coll,
            });
        prop::collection::vec(phase, 1..5).prop_map(move |phases| Pattern { ranks, phases })
    })
}

fn build_programs(p: &Pattern) -> ProgramSet {
    let programs = (0..p.ranks)
        .map(|rank| {
            let mut b = ProgramBuilder::new();
            for (pi, phase) in p.phases.iter().enumerate() {
                b.comp(phase.comp_ns[rank as usize]);
                let mut reqs = Vec::new();
                for (mi, &(src, dst, bytes)) in phase.messages.iter().enumerate() {
                    let tag = (pi * 64 + mi) as u32;
                    if src == rank {
                        reqs.push(b.isend(dst, bytes, tag));
                    }
                    if dst == rank {
                        reqs.push(b.irecv(src, bytes, tag));
                    }
                }
                b.waitall(reqs);
                match phase.coll {
                    PhaseColl::None => {}
                    PhaseColl::Barrier => {
                        b.barrier();
                    }
                    PhaseColl::Allreduce(bytes) => {
                        b.allreduce(bytes);
                    }
                    PhaseColl::Bcast(bytes, root) => {
                        b.bcast(bytes, root);
                    }
                }
            }
            b.build()
        })
        .collect();
    ProgramSet::new(programs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every generated pattern compiles to an acyclic graph under both
    /// protocols, and the text format round-trips.
    #[test]
    fn patterns_compile_and_round_trip(p in pattern_strategy()) {
        let set = build_programs(&p);
        let trace = set.trace(&TracerConfig::default());
        let text = write_trace(&trace);
        prop_assert_eq!(&parse_trace(&text).unwrap(), &trace);
        for cfg in [GraphConfig::eager(), GraphConfig::paper()] {
            let g = build_graph(&trace, &cfg);
            prop_assert!(g.is_ok(), "build failed: {:?}", g.err());
        }
    }

    /// T(L) from the envelope equals direct evaluation at arbitrary points
    /// and is nondecreasing and convex-consistent.
    #[test]
    fn envelope_equals_eval_and_is_monotone(
        p in pattern_strategy(),
        ls in prop::collection::vec(0.0f64..200_000.0, 3..8),
    ) {
        let set = build_programs(&p);
        let g = build_graph(&set.trace(&TracerConfig::default()), &GraphConfig::paper()).unwrap();
        let params = LogGPSParams::cscs_testbed(p.ranks).with_o(2_000.0);
        let binding = Binding::uniform(&params);
        let prof = ParametricProfile::compute(&g, &binding, (0.0, 250_000.0));
        let mut pts: Vec<f64> = ls;
        pts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev_t = f64::NEG_INFINITY;
        let mut prev_lam = -1.0;
        for &l in &pts {
            let t_env = prof.runtime(l);
            let t_ev = evaluate(&g, &binding, l).runtime;
            prop_assert!(
                (t_env - t_ev).abs() <= 1e-6 * (1.0 + t_ev),
                "L={l}: envelope {t_env} vs eval {t_ev}"
            );
            prop_assert!(t_env >= prev_t - 1e-9, "T(L) decreased at {l}");
            let lam = prof.lambda(l);
            prop_assert!(lam >= prev_lam - 1e-9, "λ decreased at {l}");
            prev_t = t_env;
            prev_lam = lam;
        }
    }

    /// Dataflow simulation equals the analytical prediction on arbitrary
    /// patterns; injected latency shifts it by at most λ_max·∆L.
    #[test]
    fn dataflow_sim_matches_prediction(p in pattern_strategy()) {
        let set = build_programs(&p);
        let g = build_graph(&set.trace(&TracerConfig::default()), &GraphConfig::paper()).unwrap();
        let params = LogGPSParams::cscs_testbed(p.ranks).with_o(2_000.0);
        let binding = Binding::uniform(&params);
        let predicted = evaluate(&g, &binding, params.l).runtime;
        let sim = Simulator::new(&g, SimConfig::dataflow(params)).run().makespan;
        prop_assert!(
            (predicted - sim).abs() <= 1e-6 * (1.0 + sim),
            "predicted {predicted} vs dataflow sim {sim}"
        );
        // Injection monotonicity.
        let delta = 10_000.0;
        let sim_inj = Simulator::new(&g, SimConfig::dataflow(params).with_delta_l(delta))
            .run()
            .makespan;
        prop_assert!(sim_inj >= sim - 1e-9);
    }

    /// Chain contraction never changes predictions (any pattern, any L).
    #[test]
    fn contraction_is_analysis_preserving(
        p in pattern_strategy(),
        l in 0.0f64..100_000.0,
    ) {
        let set = build_programs(&p);
        let g = build_graph(&set.trace(&TracerConfig::default()), &GraphConfig::paper()).unwrap();
        let params = LogGPSParams::cscs_testbed(p.ranks).with_o(2_000.0);
        let binding = Binding::uniform(&params);
        let full = evaluate(&g, &binding, l);
        let contracted = evaluate(&g.contracted(), &binding, l);
        prop_assert!(
            (full.runtime - contracted.runtime).abs() <= 1e-6 * (1.0 + full.runtime)
        );
        prop_assert_eq!(full.lambda, contracted.lambda);
    }
}

//! Property tests for the multi-parameter (`L × G × o`) analysis: the
//! dual sensitivities `λ_G` and `λ_o` read off the multi-parameter LP
//! must agree with finite-difference makespan slopes measured on the
//! independently implemented direct evaluator — the same certificate the
//! latency analysis has for `λ_L`, extended to the other LogGPS axes.

use llamp::core::{evaluate_multi, Binding, GraphLp, GraphMultiLp, ParamPoint, SweepParam};
use llamp::model::LogGPSParams;
use llamp::schedgen::{build_graph, ExecGraph, GraphConfig};
use llamp::trace::{ProgramBuilder, ProgramSet, TracerConfig};
use proptest::prelude::*;

/// One phase: matched messages `(src, dst, bytes)`, per-rank compute,
/// and whether an allreduce closes the phase.
type PatternPhase = (Vec<(u32, u32, u64)>, Vec<f64>, bool);

/// Deadlock-free random SPMD pattern: phases of matched nonblocking
/// messages + waitall + optional collective (a trimmed version of the
/// pipeline property generator).
#[derive(Debug, Clone)]
struct Pattern {
    ranks: u32,
    phases: Vec<PatternPhase>,
}

fn pattern_strategy() -> impl Strategy<Value = Pattern> {
    (2u32..6).prop_flat_map(|ranks| {
        let msg = (0..ranks, 0..ranks, 1u64..100_000)
            .prop_filter_map("no self messages", move |(a, b, bytes)| {
                (a != b).then_some((a, b, bytes))
            });
        let phase = (
            prop::collection::vec(msg, 0..5),
            prop::collection::vec(0.0f64..100_000.0, ranks as usize),
            any::<bool>(),
        );
        prop::collection::vec(phase, 1..4).prop_map(move |phases| Pattern { ranks, phases })
    })
}

fn raw_graph_of(p: &Pattern) -> ExecGraph {
    let programs = (0..p.ranks)
        .map(|rank| {
            let mut b = ProgramBuilder::new();
            for (pi, (messages, comp, coll)) in p.phases.iter().enumerate() {
                b.comp(comp[rank as usize]);
                let mut reqs = Vec::new();
                for (mi, &(src, dst, bytes)) in messages.iter().enumerate() {
                    let tag = (pi * 64 + mi) as u32;
                    if src == rank {
                        reqs.push(b.isend(dst, bytes, tag));
                    }
                    if dst == rank {
                        reqs.push(b.irecv(src, bytes, tag));
                    }
                }
                b.waitall(reqs);
                if *coll {
                    b.allreduce(256);
                }
            }
            b.build()
        })
        .collect();
    build_graph(
        &ProgramSet::new(programs).trace(&TracerConfig::default()),
        &GraphConfig::paper(),
    )
    .unwrap()
}

fn graph_of(p: &Pattern) -> ExecGraph {
    raw_graph_of(p).contracted()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The multi-parameter LP's full gradient agrees with the direct
    /// evaluator at arbitrary (L, G, o) query points.
    #[test]
    fn multi_lp_gradient_matches_direct_evaluation(
        p in pattern_strategy(),
        l in 0.0f64..100_000.0,
        g in 0.0f64..2.0,
        o in 0.0f64..20_000.0,
    ) {
        let graph = graph_of(&p);
        let params = LogGPSParams::cscs_testbed(p.ranks).with_o(2_000.0);
        let binding = Binding::uniform(&params);
        let mut lp = GraphMultiLp::build(&graph, &binding);
        let pred = lp.predict(ParamPoint { l, g, o }).unwrap();
        let ev = evaluate_multi(&graph, &binding, l, g, o);
        prop_assert!(
            (pred.runtime - ev.runtime).abs() <= 1e-6 * (1.0 + ev.runtime),
            "T: lp {} vs eval {}", pred.runtime, ev.runtime
        );
        prop_assert!((pred.lambda_l - ev.lambda_l).abs() <= 1e-6, "λ_L");
        prop_assert!((pred.lambda_g - ev.lambda_g).abs() <= 1e-6, "λ_G");
        prop_assert!((pred.lambda_o - ev.lambda_o).abs() <= 1e-6, "λ_o");
    }

    /// The dual certificate: within the per-parameter basis-stability
    /// window the makespan is exactly linear, so the central finite
    /// difference of the *evaluated* makespan equals the LP's reduced
    /// cost — for every sweepable parameter, λ_G and λ_o included.
    #[test]
    fn duals_match_finite_difference_slopes(
        p in pattern_strategy(),
        l in 0.0f64..80_000.0,
        g in 0.0f64..1.0,
        o in 500.0f64..10_000.0,
    ) {
        let graph = graph_of(&p);
        let params = LogGPSParams::cscs_testbed(p.ranks).with_o(2_000.0);
        let binding = Binding::uniform(&params);
        let mut lp = GraphMultiLp::build(&graph, &binding);
        let at = ParamPoint { l, g, o };
        let pred = lp.predict(at).unwrap();
        for param in SweepParam::ALL {
            let x = at.get(param);
            let (lo, hi) = pred.feasible(param);
            // An interior step that stays inside the stability window on
            // both sides (windows can be degenerate at breakpoints —
            // skip those draws, the slope is one-sided there).
            let up = if hi.is_finite() { (hi - x) / 4.0 } else { x.max(1.0) };
            let dn = if lo.is_finite() { (x - lo) / 4.0 } else { x };
            let h = up.min(dn);
            if h.is_nan() || h <= 1e-9 {
                continue;
            }
            let t_plus = evaluate_multi(
                &graph, &binding,
                at.with(param, x + h).l, at.with(param, x + h).g, at.with(param, x + h).o,
            ).runtime;
            let t_minus = evaluate_multi(
                &graph, &binding,
                at.with(param, x - h).l, at.with(param, x - h).g, at.with(param, x - h).o,
            ).runtime;
            let slope = (t_plus - t_minus) / (2.0 * h);
            prop_assert!(
                (slope - pred.lambda(param)).abs() <= 1e-5 * (1.0 + pred.lambda(param).abs()),
                "{param}: finite-difference slope {slope} vs dual {}",
                pred.lambda(param)
            );
        }
    }

    /// At the (G, o) base cross-section the multi-parameter LP reproduces
    /// the single-parameter latency LP.
    #[test]
    fn base_cross_section_matches_single_parameter_lp(
        p in pattern_strategy(),
        l in 0.0f64..100_000.0,
    ) {
        let graph = graph_of(&p);
        let params = LogGPSParams::cscs_testbed(p.ranks).with_o(2_000.0);
        let binding = Binding::uniform(&params);
        let mut multi = GraphMultiLp::build(&graph, &binding);
        let mut single = GraphLp::build(&graph, &binding);
        let a = multi
            .predict(ParamPoint { l, g: params.big_g, o: params.o })
            .unwrap();
        let b = single.predict(l).unwrap();
        prop_assert!(
            (a.runtime - b.runtime).abs() <= 1e-7 * (1.0 + b.runtime),
            "T: multi {} vs single {}", a.runtime, b.runtime
        );
        prop_assert!((a.lambda_l - b.lambda).abs() <= 1e-7);
    }
}

// ---------------------------------------------------------------------------
// Graph reduction pipeline certificates (ISSUE 5): on the same random
// graphs, the reduced IR must answer identically — makespans to 1e-9,
// duals matching finite-difference slopes measured on the *raw* graph,
// and critical paths lifting back to valid original-graph paths.
// ---------------------------------------------------------------------------

use llamp::schedgen::{reduce, ReduceConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The reduced graph's makespan and full (λ_L, λ_G, λ_o) gradient
    /// equal the raw graph's at arbitrary (L, G, o) query points.
    #[test]
    fn reduced_evaluation_matches_raw(
        p in pattern_strategy(),
        l in 0.0f64..100_000.0,
        g in 0.0f64..2.0,
        o in 0.0f64..20_000.0,
    ) {
        let raw = raw_graph_of(&p);
        let red = reduce(&raw, &ReduceConfig::default());
        let params = LogGPSParams::cscs_testbed(p.ranks).with_o(2_000.0);
        let binding = Binding::uniform(&params);
        let a = evaluate_multi(&raw, &binding, l, g, o);
        let b = evaluate_multi(red.graph(), &binding, l, g, o);
        prop_assert!(
            (a.runtime - b.runtime).abs() <= 1e-9 * (1.0 + a.runtime),
            "T: raw {} vs reduced {}", a.runtime, b.runtime
        );
        prop_assert!((a.lambda_l - b.lambda_l).abs() <= 1e-9, "λ_L");
        prop_assert!((a.lambda_g - b.lambda_g).abs() <= 1e-9, "λ_G");
        prop_assert!((a.lambda_o - b.lambda_o).abs() <= 1e-9, "λ_o");
    }

    /// The multi-parameter LP built from the reduced graph reports the
    /// same makespan and duals as the LP built from the raw graph.
    #[test]
    fn reduced_lp_matches_unreduced_lp(
        p in pattern_strategy(),
        l in 0.0f64..100_000.0,
        g in 0.0f64..1.0,
        o in 0.0f64..10_000.0,
    ) {
        let raw = raw_graph_of(&p);
        let red = reduce(&raw, &ReduceConfig::default());
        let params = LogGPSParams::cscs_testbed(p.ranks).with_o(2_000.0);
        let binding = Binding::uniform(&params);
        let at = ParamPoint { l, g, o };
        let a = GraphMultiLp::build(&raw, &binding).predict(at).unwrap();
        let b = GraphMultiLp::build(red.graph(), &binding).predict(at).unwrap();
        prop_assert!(
            (a.runtime - b.runtime).abs() <= 1e-9 * (1.0 + a.runtime),
            "T: raw LP {} vs reduced LP {}", a.runtime, b.runtime
        );
        prop_assert!((a.lambda_l - b.lambda_l).abs() <= 1e-9, "λ_L");
        prop_assert!((a.lambda_g - b.lambda_g).abs() <= 1e-9, "λ_G");
        prop_assert!((a.lambda_o - b.lambda_o).abs() <= 1e-9, "λ_o");
    }

    /// Lifted-back dual certificate: λ duals read off the *reduced* LP
    /// match central finite-difference makespan slopes measured on the
    /// *raw* graph, inside the reported stability windows — the duals
    /// really do refer to original-graph sensitivities.
    #[test]
    fn reduced_lp_duals_match_raw_finite_differences(
        p in pattern_strategy(),
        l in 0.0f64..80_000.0,
        g in 0.0f64..1.0,
        o in 500.0f64..10_000.0,
    ) {
        let raw = raw_graph_of(&p);
        let red = reduce(&raw, &ReduceConfig::default());
        let params = LogGPSParams::cscs_testbed(p.ranks).with_o(2_000.0);
        let binding = Binding::uniform(&params);
        let mut lp = GraphMultiLp::build(red.graph(), &binding);
        let at = ParamPoint { l, g, o };
        let pred = lp.predict(at).unwrap();
        for param in SweepParam::ALL {
            let x = at.get(param);
            let (lo, hi) = pred.feasible(param);
            let up = if hi.is_finite() { (hi - x) / 4.0 } else { x.max(1.0) };
            let dn = if lo.is_finite() { (x - lo) / 4.0 } else { x };
            // Clamp the downward probe to the non-negative domain: the
            // reduction pipeline's equivalence (and LogGPS itself) is
            // defined for θ ≥ 0, while a degenerate window may extend
            // below zero.
            let h = up.min(dn).min(x);
            if h.is_nan() || h <= 1e-9 {
                continue;
            }
            let up_pt = at.with(param, x + h);
            let dn_pt = at.with(param, x - h);
            let t_plus = evaluate_multi(&raw, &binding, up_pt.l, up_pt.g, up_pt.o).runtime;
            let t_minus = evaluate_multi(&raw, &binding, dn_pt.l, dn_pt.g, dn_pt.o).runtime;
            let slope = (t_plus - t_minus) / (2.0 * h);
            prop_assert!(
                (slope - pred.lambda(param)).abs() <= 1e-5 * (1.0 + pred.lambda(param).abs()),
                "{param}: raw finite-difference slope {slope} vs reduced dual {} \
                 (x={x}, window=({lo},{hi}), h={h}, at={at:?})",
                pred.lambda(param)
            );
        }
    }

    /// Critical paths lift back to the original graph: consecutive
    /// lifted vertices are connected by original edges, the path starts
    /// at an original source and ends at an original sink, and every
    /// reduced vertex/edge member appears in original topological order.
    #[test]
    fn reduced_critical_paths_lift_back_to_original_paths(
        p in pattern_strategy(),
        l in 0.0f64..100_000.0,
    ) {
        let raw = raw_graph_of(&p);
        let red = reduce(&raw, &ReduceConfig::default());
        let params = LogGPSParams::cscs_testbed(p.ranks).with_o(2_000.0);
        let binding = Binding::uniform(&params);
        let ev = llamp::core::evaluate(red.graph(), &binding, l);
        let lifted = red.lift_path(&ev.critical_path);
        prop_assert!(!lifted.is_empty());
        for w in lifted.windows(2) {
            prop_assert!(
                raw.preds(w[1]).iter().any(|e| e.other == w[0]),
                "lifted vertices {} -> {} are not connected in the original graph",
                w[0], w[1]
            );
        }
        prop_assert!(
            raw.preds(lifted[0]).is_empty(),
            "lifted path must start at an original source"
        );
        prop_assert!(
            raw.succs(*lifted.last().unwrap()).is_empty(),
            "lifted path must end at an original sink"
        );
    }
}

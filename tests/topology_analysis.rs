//! Topology and heterogeneous-latency analyses across crates
//! (Fig. 11 / Appendices H-I as invariants).

use llamp::core::{Analyzer, Binding};
use llamp::model::{HLogGP, LogGPSParams};
use llamp::schedgen::{build_graph, GraphConfig};
use llamp::topo::{Dragonfly, FatTree, Topology, WireClass};
use llamp::trace::{ProgramSet, TracerConfig};
use llamp::util::time::us;

fn ring_workload(ranks: u32) -> llamp::schedgen::ExecGraph {
    let set = ProgramSet::spmd(ranks, |rank, b| {
        for i in 0..4 {
            b.comp(us(50.0));
            let next = (rank + 1) % ranks;
            let prev = (rank + ranks - 1) % ranks;
            b.sendrecv(next, 4096, i, prev, 4096, i);
        }
    });
    build_graph(&set.trace(&TracerConfig::default()), &GraphConfig::paper()).unwrap()
}

/// The wire-decomposed binding must equal a manual HLogGP binding whose
/// pairwise latency is the topology's uniform-wire latency.
#[test]
fn wire_binding_matches_manual_hloggp() {
    let ranks = 16u32;
    let graph = ring_workload(ranks);
    let params = LogGPSParams::cscs_testbed(ranks).with_o(us(1.0));
    let placement: Vec<u32> = (0..ranks).collect();
    let ft = FatTree::new(8);
    let d_switch = 108.0;
    let l_wire = 274.0;

    let wire = Binding::wire(&params, &ft, &placement, d_switch);
    let a_wire = Analyzer::with_binding(&graph, wire, l_wire);
    let t_wire = a_wire.evaluate(l_wire).runtime;

    let mut h = HLogGP::uniform(params);
    for i in 0..ranks {
        for j in 0..ranks {
            if i != j {
                h.set_l(i, j, ft.latency(i, j, l_wire, d_switch));
            }
        }
    }
    let hb = Binding::hloggp(&h, &placement);
    let a_h = Analyzer::with_binding(&graph, hb, 0.0);
    let t_h = a_h.evaluate(0.0).runtime;

    assert!(
        (t_wire - t_h).abs() < 1e-6 * t_h,
        "wire {t_wire} vs manual hloggp {t_h}"
    );
}

/// Dragonfly's lower average hop count gives it equal-or-better runtime at
/// equal wire latency on the same traffic (the paper's Fig. 11
/// observation).
#[test]
fn dragonfly_at_least_matches_fat_tree() {
    let ranks = 32u32;
    let graph = ring_workload(ranks);
    let params = LogGPSParams::cscs_testbed(ranks).with_o(us(1.0));
    let placement: Vec<u32> = (0..ranks).collect();
    let l_wire = 274.0;
    let t = |b: Binding| {
        Analyzer::with_binding(&graph, b, l_wire)
            .evaluate(l_wire)
            .runtime
    };
    let t_ft = t(Binding::wire(&params, &FatTree::new(16), &placement, 108.0));
    let t_df = t(Binding::wire(
        &params,
        &Dragonfly::paper(),
        &placement,
        108.0,
    ));
    assert!(
        t_df <= t_ft * 1.001,
        "dragonfly {t_df} should not lose to fat tree {t_ft}"
    );
}

/// Per-class analysis (Appendix H): inter-group wires are scarcer on the
/// critical path than terminal wires, so the inter-group tolerance is
/// higher for node-local-heavy placements.
#[test]
fn per_class_sensitivities_differ() {
    // The paper's dragonfly has a·p = 32 hosts per group: 64 ranks span
    // two groups, so the ring crosses an inter-group link.
    let ranks = 64u32;
    let graph = ring_workload(ranks);
    let params = LogGPSParams::cscs_testbed(ranks).with_o(us(1.0));
    let placement: Vec<u32> = (0..ranks).collect();
    let df = Dragonfly::paper();
    let fixed = [274.0, 274.0, 274.0];

    let lambda_of = |class| {
        let b = Binding::wire_class(&params, &df, &placement, 108.0, class, fixed);
        Analyzer::with_binding(&graph, b, 274.0)
            .evaluate(274.0)
            .lambda
    };
    let lam_term = lambda_of(WireClass::Terminal);
    let lam_inter = lambda_of(WireClass::Inter);
    // Every message crosses 2 terminal wires; only group-crossing ones use
    // an inter wire.
    assert!(
        lam_term > lam_inter,
        "terminal λ {lam_term} should exceed inter λ {lam_inter}"
    );
    assert!(lam_inter > 0.0, "ring traffic does cross groups");
}

/// Moving ranks that share a switch keeps the same profile classes the
/// topology promises (dense packing sanity).
#[test]
fn dense_packing_profiles() {
    let df = Dragonfly::paper();
    // Nodes 0..7 under one router: 1 switch.
    assert_eq!(df.profile(0, 7).switches, 1);
    let ft = FatTree::new(16);
    assert_eq!(ft.profile(0, 7).switches, 1);
    // First cross-pod pair.
    assert_eq!(ft.profile(0, 64).switches, 5);
}

//! Placement pipeline: Algorithm 3 against its baselines on full
//! workload graphs (the Fig. 20 experiment as an invariant).

use llamp::core::placement::{
    block_mapping, evaluate_mapping, llamp_placement, random_mapping, round_robin_mapping,
    volume_greedy_mapping, Machine,
};
use llamp::model::LogGPSParams;
use llamp::schedgen::{build_graph, GraphConfig};
use llamp::trace::{ProgramSet, TracerConfig};
use llamp::workloads::App;

fn machine_16() -> Machine {
    Machine {
        nodes: 4,
        slots_per_node: 4,
        intra_l: 200.0,
        inter_l: 3_000.0,
    }
}

/// Adversarial stride pattern: Algorithm 3 must recover most of the
/// intra-node latency advantage from a block start. Pairs carry distinct
/// compute weights so each fixed pair lowers the makespan — on perfectly
/// symmetric patterns the objective is flat until the *last* pair moves
/// and the greedy loop (like the paper's) stops early.
#[test]
fn llamp_placement_recovers_stride_pattern() {
    let ranks = 16u32;
    let set = ProgramSet::spmd(ranks, |rank, b| {
        let peer = (rank + 8) % 16;
        let weight = 1.0 + (rank % 8) as f64 * 0.5;
        for i in 0..20 {
            b.comp(10_000.0 * weight);
            if rank < peer {
                b.send(peer, 1024, i);
                b.recv(peer, 1024, 100 + i);
            } else {
                b.recv(peer, 1024, i);
                b.send(peer, 1024, 100 + i);
            }
        }
    });
    let graph = build_graph(&set.trace(&TracerConfig::default()), &GraphConfig::paper()).unwrap();
    let machine = machine_16();
    let params = LogGPSParams::cscs_testbed(ranks).with_o(500.0);

    let out = llamp_placement(&graph, &machine, &params, block_mapping(ranks));
    assert!(
        out.runtime < 0.9 * out.initial_runtime,
        "expected >10% gain: {} -> {}",
        out.initial_runtime,
        out.runtime
    );
    // Volume-greedy also solves this (pure volume suffices here).
    let vol = volume_greedy_mapping(&graph, &machine);
    let t_vol = evaluate_mapping(&graph, &machine, &params, &vol);
    assert!(t_vol < 0.9 * out.initial_runtime);
}

/// On a symmetric collective-dominated application no placement should
/// beat block placement meaningfully (the paper's 'inconclusive' ICON
/// outcome) — and Algorithm 3 must not make things worse.
#[test]
fn placement_on_icon_is_at_least_neutral() {
    let ranks = 16u32;
    let set = App::Icon.programs(ranks, 3);
    let graph = build_graph(&set.trace(&TracerConfig::default()), &GraphConfig::paper()).unwrap();
    let machine = machine_16();
    let params = LogGPSParams::cscs_testbed(ranks).with_o(App::Icon.paper_o());

    let t_block = evaluate_mapping(&graph, &machine, &params, &block_mapping(ranks));
    let out = llamp_placement(&graph, &machine, &params, block_mapping(ranks));
    assert!(out.runtime <= t_block + 1e-6);
    // Gain stays small on an already-balanced app.
    assert!(
        out.runtime > 0.9 * t_block,
        "suspiciously large gain on symmetric ICON: {} -> {}",
        t_block,
        out.runtime
    );
}

/// All baseline mappings are valid and comparable.
#[test]
fn baselines_produce_valid_mappings() {
    let ranks = 16u32;
    let set = App::Cloverleaf.programs(ranks, 2);
    let graph = build_graph(&set.trace(&TracerConfig::default()), &GraphConfig::paper()).unwrap();
    let machine = machine_16();
    let params = LogGPSParams::cscs_testbed(ranks).with_o(1_000.0);

    for mapping in [
        block_mapping(ranks),
        round_robin_mapping(ranks, &machine),
        random_mapping(ranks, &machine, 3),
        volume_greedy_mapping(&graph, &machine),
    ] {
        let mut sorted = mapping.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ranks as usize);
        let t = evaluate_mapping(&graph, &machine, &params, &mapping);
        assert!(t.is_finite() && t > 0.0);
    }
}

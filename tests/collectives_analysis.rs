//! Collective-algorithm analysis across the pipeline (the Fig. 10 claims
//! as invariants).

use llamp::core::Analyzer;
use llamp::model::LogGPSParams;
use llamp::schedgen::{build_graph, AllreduceAlgo, BcastAlgo, CollectiveConfig, GraphConfig};
use llamp::trace::{ProgramSet, TracerConfig};
use llamp::util::time::us;

fn allreduce_graph(ranks: u32, algo: AllreduceAlgo, bytes: u64) -> llamp::schedgen::ExecGraph {
    let set = ProgramSet::spmd(ranks, |_, b| {
        for _ in 0..3 {
            b.comp(us(100.0));
            b.allreduce(bytes);
        }
    });
    let cfg = GraphConfig {
        rndv_threshold: u64::MAX,
        collectives: CollectiveConfig {
            allreduce: algo,
            ..Default::default()
        },
    };
    build_graph(&set.trace(&TracerConfig::default()), &cfg).unwrap()
}

/// Ring allreduce has Θ(P) dependent steps vs Θ(lg P) for recursive
/// doubling: its latency sensitivity must be strictly larger and grow
/// faster with scale (Fig. 10).
#[test]
fn ring_is_more_latency_sensitive_than_recursive_doubling() {
    let params = LogGPSParams::cscs_testbed(16).with_o(us(1.0));
    let mut prev_ratio = 0.0;
    for ranks in [8u32, 16, 32] {
        let g_rd = allreduce_graph(ranks, AllreduceAlgo::RecursiveDoubling, 1024);
        let g_ring = allreduce_graph(ranks, AllreduceAlgo::Ring, 1024);
        let a_rd = Analyzer::new(&g_rd, &params);
        let a_ring = Analyzer::new(&g_ring, &params);
        let l = params.l + us(100.0);
        let lam_rd = a_rd.evaluate(l).lambda;
        let lam_ring = a_ring.evaluate(l).lambda;
        assert!(
            lam_ring > lam_rd,
            "P={ranks}: ring λ {lam_ring} <= recdub λ {lam_rd}"
        );
        let ratio = lam_ring / lam_rd;
        assert!(
            ratio >= prev_ratio,
            "P={ranks}: sensitivity gap should widen with scale"
        );
        prev_ratio = ratio;
    }
}

/// Tolerance ordering is the flip side: recursive doubling tolerates more.
#[test]
fn recursive_doubling_tolerates_more_latency() {
    let ranks = 16;
    let params = LogGPSParams::cscs_testbed(ranks).with_o(us(1.0));
    let tol = |algo| {
        let g = allreduce_graph(ranks, algo, 1024);
        Analyzer::new(&g, &params).tolerance_pct(5.0, params.l + us(1_000_000.0))
    };
    let t_rd = tol(AllreduceAlgo::RecursiveDoubling);
    let t_ring = tol(AllreduceAlgo::Ring);
    assert!(
        t_rd > 2.0 * t_ring,
        "recdub {t_rd} should beat ring {t_ring} clearly"
    );
}

/// All three allreduce algorithms compute the same collective; at zero
/// latency and bandwidth their runtimes may differ only through `o` chains
/// — and every one terminates and matches a valid schedule.
#[test]
fn allreduce_algorithms_all_build_and_are_causal() {
    for ranks in [3u32, 4, 6, 8, 17] {
        for algo in [
            AllreduceAlgo::RecursiveDoubling,
            AllreduceAlgo::Ring,
            AllreduceAlgo::ReduceBcast,
        ] {
            let g = allreduce_graph(ranks, algo, 64);
            assert!(g.num_messages() > 0, "P={ranks} {algo:?}");
        }
    }
}

/// Broadcast algorithm trade-off: binomial trees minimise the root's `o`
/// chain (O(lg P) vs O(P)) and win when overhead dominates; linear bcast
/// has latency depth 1 (all transfers in parallel) and wins when `L`
/// dominates. Both regimes must come out of the analysis.
#[test]
fn bcast_algorithm_tradeoff() {
    let ranks = 16u32;
    let mk = |algo, l_extra: f64| {
        let params = LogGPSParams::cscs_testbed(ranks).with_o(us(1.0));
        let set = ProgramSet::spmd(ranks, |_, b| {
            b.bcast(4096, 0);
        });
        let cfg = GraphConfig {
            rndv_threshold: u64::MAX,
            collectives: CollectiveConfig {
                bcast: algo,
                ..Default::default()
            },
        };
        let g = build_graph(&set.trace(&TracerConfig::default()), &cfg).unwrap();
        let a = Analyzer::new(&g, &params);
        let e = a.evaluate(100.0 + l_extra);
        (e.runtime, e.lambda)
    };
    // Overhead-dominated regime (L ≈ 0): binomial wins.
    let (t_bin, lam_bin) = mk(BcastAlgo::BinomialTree, 0.0);
    let (t_lin, lam_lin) = mk(BcastAlgo::Linear, 0.0);
    assert!(
        t_bin < t_lin,
        "o-regime: binomial {t_bin} vs linear {t_lin}"
    );
    // Latency sensitivities: lg P for the tree, 1 for the pipelined chain.
    assert_eq!(lam_bin, 4.0);
    assert_eq!(lam_lin, 1.0);
    // Latency-dominated regime: linear overtakes (its λ is smaller).
    let (t_bin_hi, _) = mk(BcastAlgo::BinomialTree, us(300.0));
    let (t_lin_hi, _) = mk(BcastAlgo::Linear, us(300.0));
    assert!(
        t_lin_hi < t_bin_hi,
        "L-regime: linear {t_lin_hi} vs binomial {t_bin_hi}"
    );
}
